"""Cost-optimal graph partitioning (Definition IV.1).

GCD2 avoids the exponential global search by cutting the graph at
*desirable partitioning edges* — edges ``e = (v_i, v_j)`` where

1. ``v_j`` has only one predecessor (``v_i``), and
2. ``v_j`` is a layout transformation operator, **or** the
   transformation along ``e`` is *profitable* (the successor's speedup
   from switching layouts exceeds the transformation's own cost).

Decisions upstream and downstream of such an edge can be made in
isolation.  When the resulting partitions are still larger than the
solver's operator budget, *complementary* cut edges are added (the
paper's fallback for graphs without dominant cut edges): the partition
is split at single-predecessor edges in topological order.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.cost import CostModel, tensor_2d_view
from repro.graph.graph import ComputationalGraph, Node
from repro.tensor.transform_cost import transform_cycles


def is_desirable_edge(
    graph: ComputationalGraph,
    model: CostModel,
    src: int,
    dst: int,
) -> bool:
    """Whether ``(src, dst)`` is a desirable partitioning edge."""
    consumer = graph.node(dst)
    if len(consumer.inputs) != 1:
        return False
    if consumer.op.is_layout_transform:
        return True
    return _is_profitable_transform(graph, model, graph.node(src), consumer)


def _is_profitable_transform(
    graph: ComputationalGraph,
    model: CostModel,
    producer: Node,
    consumer: Node,
) -> bool:
    """Profitability test of Section IV-B.

    Compares the consumer's cost when *keeping* the producer's locally
    best layout against its cost in its own best layout plus the data
    transformation, using locally optimal plans as the estimate (the
    full interaction is what the per-partition search resolves).
    """
    producer_plans = model.plans(producer)
    if (
        len({p.layout for p in producer_plans}) > 1
        and all(p.instruction is None for p in producer_plans)
    ):
        # Layout-transparent producer: it has no layout preference of
        # its own (all carrier layouts cost the same), so this edge
        # carries no genuine transformation decision — cutting here
        # would only sever the neighbours' joint optimization.
        return False
    producer_best = min(
        producer_plans, key=lambda p: model.node_cost(graph, producer, p)
    )
    consumer_plans = model.plans(consumer)
    consumer_best = min(
        consumer_plans, key=lambda p: model.node_cost(graph, consumer, p)
    )
    if consumer_best.layout is producer_best.layout:
        return False
    keep_candidates = [
        p for p in consumer_plans if p.layout is producer_best.layout
    ]
    if not keep_candidates:
        return True
    keep_cost = min(
        model.node_cost(graph, consumer, p) for p in keep_candidates
    )
    best_cost = model.node_cost(graph, consumer, consumer_best)
    rows, cols = tensor_2d_view(producer.output_shape)
    tc = transform_cycles(
        rows, cols, producer_best.layout, consumer_best.layout
    )
    return (keep_cost - best_cost) > tc


def desirable_partition_edges(
    graph: ComputationalGraph, model: CostModel
) -> List[Tuple[int, int]]:
    """All desirable partitioning edges of the graph."""
    return [
        (src, dst)
        for src, dst in graph.edges()
        if is_desirable_edge(graph, model, src, dst)
    ]


def partition(
    graph: ComputationalGraph,
    model: CostModel,
    *,
    max_operators: int = 13,
) -> List[List[int]]:
    """Partition the graph for independent per-partition optimization.

    Returns partitions as lists of node ids in topological order; the
    list of partitions is itself topologically ordered by each
    partition's earliest node, so a caller can fix plans partition by
    partition with all upstream decisions already made.

    Parameters
    ----------
    max_operators:
        Budget per partition — the paper's GCD2(13)/GCD2(17) parameter.
        Oversized partitions are split at complementary cut edges.
    """
    cut: Set[Tuple[int, int]] = set(desirable_partition_edges(graph, model))

    # Union-find over the edges that are *not* cut.
    parent: Dict[int, int] = {n.node_id: n.node_id for n in graph}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for src, dst in graph.edges():
        if (src, dst) not in cut:
            union(src, dst)

    groups: Dict[int, List[int]] = {}
    for node in graph:  # topological order preserved within groups
        groups.setdefault(find(node.node_id), []).append(node.node_id)

    partitions: List[List[int]] = []
    for members in groups.values():
        partitions.extend(_split_oversized(members, max_operators))
    partitions.sort(key=lambda part: part[0])
    return partitions


def _split_oversized(
    members: List[int], max_operators: int
) -> List[List[int]]:
    """Add complementary cuts: chunk an oversized partition in topo order."""
    if len(members) <= max_operators:
        return [members]
    return [
        members[i:i + max_operators]
        for i in range(0, len(members), max_operators)
    ]
