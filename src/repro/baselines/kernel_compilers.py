"""Simulated kernel compilers: Halide, TVM and RAKE on single Conv2Ds.

The paper's Figure 7 / Table III comparison runs individual ResNet-50
convolution kernels, because these compilers "currently cannot execute
full DNN models on this platform".  Each policy models the published
behaviour of its compiler:

* **instruction selection** — Halide's DSP schedules build on the
  dot-product form (``vrmpy``); TVM tunes per kernel but over the same
  fixed-layout template; RAKE synthesises its selection, landing on
  ``vrmpy`` for spatial kernels and ``vmpy`` for 1x1 (its Table III
  column).  None of the three co-optimizes the data layout, so each
  kernel pays the canonical-layout boundary transforms that GCD2's
  global layout selection amortises away.
* **packing** — all three "perform packet generation without
  distinguishing between soft and hard dependencies", modelled with
  the top-down list scheduler / soft-to-hard packers.
* **schedule efficiency** — a per-compiler multiplier covering the
  loop-nest quality gap our kernel model does not otherwise capture
  (prefetching, alignment, copy elision); calibrated once against
  Figure 7's GCD_b speedups and held fixed across all kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.cost import gemm_cycles, tensor_2d_view
from repro.core.plans import INSTRUCTION_LAYOUT, PRIMARY_INSTRUCTIONS
from repro.core.unroll import adaptive_unroll
from repro.codegen.matmul import emit_matmul_body
from repro.graph import ops
from repro.isa.instructions import Opcode
from repro.machine.pipeline import schedule_cycles
from repro.tensor.layout import Layout
from repro.tensor.transform_cost import transform_cycles
from repro.core.packing.sda import pack_best
from repro.core.packing.baselines import (
    pack_list_schedule,
    pack_soft_to_hard,
)


@dataclass(frozen=True)
class Conv2DKernel:
    """One Conv2D benchmark kernel (a Table III / Figure 7 row)."""

    name: str
    in_shape: Tuple[int, int, int, int]   # NCHW
    out_channels: int
    kernel: Tuple[int, int]
    stride: Tuple[int, int]

    @property
    def gemm_dims(self) -> Tuple[int, int, int]:
        """(M, K, N) im2col view."""
        n, c, h, w = self.in_shape
        kh, kw = self.kernel
        sh, sw = self.stride
        oh = (h + 2 * (kh // 2) - kh) // sh + 1
        ow = (w + 2 * (kw // 2) - kw) // sw + 1
        return (n * oh * ow, c * kh * kw, self.out_channels)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        return (
            self.out_channels,
            self.in_shape[1],
            self.kernel[0],
            self.kernel[1],
        )


#: The first eight unique Conv2D operators of ResNet-50 (C0..C7), plus
#: the three Table III rows (which are C0, C2, C4 by construction).
RESNET_CONV_KERNELS: List[Conv2DKernel] = [
    Conv2DKernel("C0", (1, 3, 224, 224), 64, (7, 7), (2, 2)),
    Conv2DKernel("C1", (1, 64, 56, 56), 64, (1, 1), (1, 1)),
    Conv2DKernel("C2", (1, 64, 56, 56), 64, (3, 3), (1, 1)),
    Conv2DKernel("C3", (1, 64, 56, 56), 256, (1, 1), (1, 1)),
    Conv2DKernel("C4", (1, 128, 28, 28), 128, (3, 3), (1, 1)),
    Conv2DKernel("C5", (1, 256, 56, 56), 128, (1, 1), (1, 1)),
    Conv2DKernel("C6", (1, 128, 28, 28), 512, (1, 1), (1, 1)),
    Conv2DKernel("C7", (1, 256, 28, 28), 256, (3, 3), (1, 1)),
]


@dataclass(frozen=True)
class KernelCompilerPolicy:
    """Behaviour of one kernel compiler."""

    name: str
    select: Callable[[Conv2DKernel], Opcode]
    packer: Callable
    schedule_efficiency: float
    pays_boundary_transforms: bool = True


def _select_best(kernel: Conv2DKernel) -> Opcode:
    """GCD2's selection: cheapest instruction under the cost model."""
    m, k, n = kernel.gemm_dims
    return min(
        PRIMARY_INSTRUCTIONS, key=lambda instr: gemm_cycles(instr, m, k, n)
    )


def _select_rake(kernel: Conv2DKernel) -> Opcode:
    """RAKE's synthesis outcome (Table III): vrmpy for spatial kernels,
    vmpy for pointwise ones."""
    return Opcode.VRMPY if kernel.kernel[0] > 1 else Opcode.VMPY


def _select_halide(kernel: Conv2DKernel) -> Opcode:
    """Halide's hand schedules build on the dot-product instruction."""
    return Opcode.VRMPY


def _select_tvm(kernel: Conv2DKernel) -> Opcode:
    """TVM autotunes the inner loop but within the vrmpy template for
    spatial kernels; pointwise kernels tune to the broadcast form."""
    return Opcode.VRMPY if kernel.kernel[0] > 1 else Opcode.VMPY


KERNEL_COMPILERS: Dict[str, KernelCompilerPolicy] = {
    "halide": KernelCompilerPolicy(
        name="Halide",
        select=_select_halide,
        packer=pack_list_schedule,
        schedule_efficiency=2.80,
    ),
    "tvm": KernelCompilerPolicy(
        name="TVM",
        select=_select_tvm,
        packer=pack_list_schedule,
        schedule_efficiency=2.00,
    ),
    "rake": KernelCompilerPolicy(
        name="RAKE",
        select=_select_rake,
        packer=pack_soft_to_hard,
        schedule_efficiency=2.40,
    ),
    "gcd_b": KernelCompilerPolicy(
        name="GCD_b",
        select=_select_best,
        packer=pack_list_schedule,  # tensor optimizations only
        schedule_efficiency=1.0,
        pays_boundary_transforms=False,
    ),
    "gcd2": KernelCompilerPolicy(
        name="GCD2",
        select=_select_best,
        packer=pack_best,
        schedule_efficiency=1.0,
        pays_boundary_transforms=False,
    ),
}


@dataclass(frozen=True)
class KernelResult:
    """Outcome of compiling one kernel under one policy."""

    compiler: str
    kernel: str
    instruction: Opcode
    cycles: float
    packets_per_iteration: int

    @property
    def label(self) -> str:
        return f"{self.compiler}/{self.kernel}"


def compile_kernel(
    kernel: Conv2DKernel, policy: KernelCompilerPolicy
) -> KernelResult:
    """Compile ``kernel`` under ``policy``; returns its modelled cost.

    Cycles combine the instruction/layout cost model, the measured
    packing quality of the policy's packer on the kernel's unrolled
    loop body, the policy's schedule-efficiency multiplier, and (for
    the standalone compilers) the canonical-layout boundary transforms.
    """
    m, k, n = kernel.gemm_dims
    instruction = policy.select(kernel)
    base = gemm_cycles(instruction, m, k, n)

    unroll = adaptive_unroll(m, n, instruction)
    body = emit_matmul_body(
        instruction, unroll.outer, unroll.mid, include_epilogue=True
    )
    policy_cycles = schedule_cycles(policy.packer(body))
    reference_cycles = schedule_cycles(pack_best(body))
    packing_quality = policy_cycles / max(1, reference_cycles)

    cycles = base * packing_quality * policy.schedule_efficiency
    if policy.pays_boundary_transforms:
        layout = INSTRUCTION_LAYOUT[instruction]
        cycles += transform_cycles(m, k, Layout.ROW_MAJOR, layout)
        cycles += transform_cycles(m, n, layout, Layout.ROW_MAJOR)
    packets = len(policy.packer(body))
    return KernelResult(
        compiler=policy.name,
        kernel=kernel.name,
        instruction=instruction,
        cycles=cycles,
        packets_per_iteration=packets,
    )
