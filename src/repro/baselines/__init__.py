"""Simulated baseline frameworks, kernel compilers, and hardware."""

from repro.baselines.frameworks import (
    FRAMEWORKS,
    FrameworkPolicy,
    framework_latency_ms,
    framework_profile,
)
from repro.baselines.kernel_compilers import (
    KERNEL_COMPILERS,
    KernelCompilerPolicy,
    compile_kernel,
)
from repro.baselines.hardware import (
    ACCELERATORS,
    AcceleratorSpec,
    RooflineDevice,
    MOBILE_CPU,
    MOBILE_GPU,
    dsp_power_watts,
)

__all__ = [
    "FRAMEWORKS",
    "FrameworkPolicy",
    "framework_latency_ms",
    "framework_profile",
    "KERNEL_COMPILERS",
    "KernelCompilerPolicy",
    "compile_kernel",
    "ACCELERATORS",
    "AcceleratorSpec",
    "RooflineDevice",
    "MOBILE_CPU",
    "MOBILE_GPU",
    "dsp_power_watts",
]
