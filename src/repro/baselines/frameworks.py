"""Simulated end-to-end DNN frameworks: TFLite-DSP and SNPE-DSP.

Both call Qualcomm's hand-tuned Hexagon NN library, so they share the
kernel strategy the paper describes — "a uniform SIMD implementation
for each operator type" with the standard interchange layout at every
operator boundary, and packet generation that treats soft dependencies
as hard.  They differ in their graph-level machinery: SNPE's graph
rewriting/fusion is stronger and its runtime dispatch is cheaper,
which is why Table IV shows SNPE consistently ahead of TFLite on the
same library.

Support gaps reproduce Table IV's "-" cells: neither runs the
transformers (missing MatMul variants and Pow), and SNPE additionally
lacks EfficientDet-d0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler import (
    CompiledModel,
    CompilerOptions,
    GCD2Compiler,
    VECTOR_CONTEXTS,
    DEFAULT_PIPELINE,
)
from repro.graph.graph import ComputationalGraph
from repro.isa.instructions import Opcode
from repro.machine.profiler import ExecutionProfile
from repro.models.registry import ModelInfo


@dataclass(frozen=True)
class FrameworkPolicy:
    """Compilation/runtime policy of one framework.

    Attributes
    ----------
    uniform_instruction:
        The single multiply instruction its operator library uses.
    packing:
        VLIW packing behaviour of the library kernels.
    op_overhead_us:
        Per-operator runtime dispatch cost (graph interpreter, DSP RPC).
    transform_bytes_per_cycle:
        Bandwidth of the canonical-layout repacking between the
        library's standalone kernels (a DRAM round trip; SNPE's runtime
        tiles it somewhat better than TFLite's delegate).
    kernel_efficiency:
        Compute efficiency of the library's generic uniform-layout
        kernels relative to GCD2's shape-specialised ones.
    graph_passes:
        Whether the framework's converter performs fusion/folding.
    supports_transformers / supports_efficientdet:
        Operator-coverage gaps (Table IV's unsupported cells).
    """

    name: str
    uniform_instruction: Opcode
    packing: str
    op_overhead_us: float
    graph_passes: bool
    transform_bytes_per_cycle: float = 1.5
    kernel_efficiency: float = 0.55
    supports_transformers: bool = False
    supports_efficientdet: bool = True

    def supports(self, info: ModelInfo) -> bool:
        """Whether this framework can run the model at all."""
        if info.transformer and not self.supports_transformers:
            return False
        if (
            info.name == "efficientdet_d0"
            and not self.supports_efficientdet
        ):
            return False
        return True


FRAMEWORKS: Dict[str, FrameworkPolicy] = {
    "tflite": FrameworkPolicy(
        name="TFLite",
        uniform_instruction=Opcode.VRMPY,
        packing="soft_to_hard",
        op_overhead_us=18.0,
        graph_passes=True,
        transform_bytes_per_cycle=1.0,
        kernel_efficiency=0.50,
    ),
    "snpe": FrameworkPolicy(
        name="SNPE",
        uniform_instruction=Opcode.VRMPY,
        packing="soft_to_hard",
        op_overhead_us=7.0,
        graph_passes=True,
        transform_bytes_per_cycle=2.0,
        kernel_efficiency=0.60,
        supports_efficientdet=False,
    ),
}

_COMPILE_CACHE: Dict[tuple, CompiledModel] = {}


def _compile_with_policy(
    graph: ComputationalGraph, policy: FrameworkPolicy
) -> CompiledModel:
    key = (graph.name, policy.name, len(graph))
    if key not in _COMPILE_CACHE:
        options = CompilerOptions(
            selection="uniform",
            uniform_instruction=policy.uniform_instruction,
            packing=policy.packing,
            unrolling="none",
            other_opts=False,
            graph_passes=policy.graph_passes,
            transform_bytes_per_cycle=policy.transform_bytes_per_cycle,
            kernel_efficiency=policy.kernel_efficiency,
        )
        _COMPILE_CACHE[key] = GCD2Compiler(options).compile(graph)
    return _COMPILE_CACHE[key]


def framework_latency_ms(
    graph: ComputationalGraph,
    info: ModelInfo,
    policy: FrameworkPolicy,
) -> Optional[float]:
    """End-to-end latency under ``policy``, or ``None`` if unsupported."""
    if not policy.supports(info):
        return None
    compiled = _compile_with_policy(graph, policy)
    dispatch_ms = (
        compiled.graph.operator_count() * policy.op_overhead_us / 1e3
    )
    return compiled.latency_ms + dispatch_ms


def framework_profile(
    graph: ComputationalGraph,
    info: ModelInfo,
    policy: FrameworkPolicy,
) -> Optional[ExecutionProfile]:
    """Execution profile (utilization/bandwidth counters), or ``None``."""
    if not policy.supports(info):
        return None
    return _compile_with_policy(graph, policy).profile
