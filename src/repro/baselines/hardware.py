"""Hardware models: mobile CPU/GPU rooflines, DSP power, accelerators.

These stand in for the physical devices of Tables I and V and the power
rails of Figure 13:

* the CPU and GPU are roofline devices — latency is the max of compute
  time and memory time plus a per-operator dispatch overhead, with
  throughput/bandwidth constants calibrated once against Table I's
  ResNet/EfficientNet rows;
* DSP power follows an affine model in MAC utilization, calibrated to
  the paper's measured 2.6 W for GCD2 and the ~7% lower draw of the
  less-utilizing TFLite/SNPE runs;
* EdgeTPU and Jetson Xavier appear as published constants, exactly as
  they do in the paper's Table V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.graph.graph import ComputationalGraph


@dataclass(frozen=True)
class RooflineDevice:
    """A compute/bandwidth roofline with per-operator overhead.

    Attributes
    ----------
    gmacs_per_s:
        Sustained MAC throughput (quantization-appropriate precision).
    gbytes_per_s:
        Sustained memory bandwidth for activation traffic.
    op_overhead_ms:
        Dispatch overhead per operator (interpreter + driver cost).
    power_watts:
        Nominal package power while busy.
    """

    name: str
    gmacs_per_s: float
    gbytes_per_s: float
    op_overhead_ms: float
    power_watts: float
    element_bytes: int = 1
    ai_saturation: float = 0.0

    def latency_ms(self, graph: ComputationalGraph) -> float:
        """Roofline latency of one inference.

        When ``ai_saturation`` is set, sustained compute throughput
        scales with the workload's arithmetic intensity (MACs per byte)
        up to the peak — GPUs only reach peak rate on dense,
        high-reuse kernels.
        """
        macs = graph.total_macs()
        activation_bytes = self.element_bytes * sum(
            int(math.prod(node.output_shape)) for node in graph
        )
        throughput = self.gmacs_per_s
        if self.ai_saturation > 0:
            intensity = macs / max(1, activation_bytes)
            throughput *= min(1.0, intensity / self.ai_saturation)
        compute_ms = macs / (throughput * 1e6)
        memory_ms = 2.0 * activation_bytes / (self.gbytes_per_s * 1e6)
        ops = graph.operator_count()
        return max(compute_ms, memory_ms) + ops * self.op_overhead_ms

    def energy_per_inference_j(self, graph: ComputationalGraph) -> float:
        """Energy of one inference in joules."""
        return self.power_watts * self.latency_ms(graph) / 1e3


#: Octa-core Kryo 585 running int8 kernels (calibrated: ResNet-50 at
#: ~62 ms and EfficientNet-b0 at ~53 ms reproduce Table I's CPU column).
MOBILE_CPU = RooflineDevice(
    name="CPU (int8)",
    gmacs_per_s=120.0,
    gbytes_per_s=1.5,
    op_overhead_ms=0.19,
    power_watts=11.0,
)

#: Adreno 650 running float16 (Table I's GPU column).
MOBILE_GPU = RooflineDevice(
    name="GPU (float16)",
    gmacs_per_s=250.0,
    gbytes_per_s=10.0,
    op_overhead_ms=0.06,
    power_watts=3.0,
    element_bytes=2,
    ai_saturation=150.0,
)


# -- DSP power -------------------------------------------------------------

#: Static draw of the DSP subsystem plus memory path (watts).
DSP_STATIC_WATTS = 0.8
#: Additional draw at full issue-slot occupancy (watts).
DSP_DYNAMIC_WATTS = 2.57


def dsp_power_watts(slot_occupancy: float) -> float:
    """DSP package power as a function of issue-slot occupancy.

    Affine in occupancy: better-utilizing compilers draw slightly more
    power ("GCD2-DSP consumes more power than other DSP solutions
    mainly because of its better DSP and memory utilization") but win
    on energy per inference.  Calibrated so GCD2's ~0.7 occupancy draws
    the paper's measured 2.6 W.
    """
    occupancy = min(1.0, max(0.0, slot_occupancy))
    return DSP_STATIC_WATTS + DSP_DYNAMIC_WATTS * occupancy


# -- accelerators (Table V published constants) -----------------------------


@dataclass(frozen=True)
class AcceleratorSpec:
    """One accelerator row of Table V (published numbers)."""

    platform: str
    device: str
    fps: float
    power_watts: float

    @property
    def fpw(self) -> float:
        """Inference frames per watt."""
        return self.fps / self.power_watts


ACCELERATORS: Dict[str, AcceleratorSpec] = {
    "edgetpu": AcceleratorSpec("EdgeTPU", "Edge TPU (int8)", 17.8, 2.0),
    "jetson_fp16": AcceleratorSpec(
        "Jetson Xavier", "GPU + DLA (fp16)", 291.0, 30.0
    ),
    "jetson_int8": AcceleratorSpec(
        "Jetson Xavier", "GPU + DLA (int8)", 1100.0, 30.0
    ),
}
