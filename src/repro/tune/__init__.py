"""Simulation-guided autotuning for the GCD2 compiler.

The subsystem closes the loop the paper leaves open: GCD2's knobs —
the SDA cost weight and soft-dependency penalty (Equation 4), the
shape-adaptive unroll seeds (Section IV-C), and the gcd2(k) partition
budget — ship with sensible defaults, but the best settings are
model-dependent.  ``repro tune`` searches them against *simulated*
total cycles and persists every evaluation, so a later
``CompilerOptions(tuned=True)`` compile picks up the best recorded
configuration automatically.

Layout:

* :mod:`repro.tune.space` — typed search spaces and the immutable
  :class:`TrialConfig` points they produce.
* :mod:`repro.tune.search` — grid / seeded-random / successive-halving
  strategies with deterministic parallel evaluation.
* :mod:`repro.tune.db` — the append-only JSONL trial database with
  schema-hash self-invalidation.
* :mod:`repro.tune.report` — per-trial metrics and the leaderboard.
"""

from repro.tune.db import (
    STATUS_ERROR,
    STATUS_OK,
    TUNE_SCHEMA_VERSION,
    TrialDB,
    TrialRecord,
    default_tune_dir,
    tune_schema_hash,
)
from repro.tune.report import (
    count_spill_instructions,
    leaderboard,
    schedule_stall_cycles,
    trial_metrics,
)
from repro.tune.search import (
    STRATEGIES,
    SearchBudget,
    SearchResult,
    run_search,
)
from repro.tune.space import (
    DEFAULT_TRIAL_CONFIG,
    Choice,
    ConfigSpace,
    TrialConfig,
    config_from_assignment,
    default_space,
    partition_space,
    sda_space,
    unroll_space,
)

__all__ = [
    "STATUS_ERROR",
    "STATUS_OK",
    "STRATEGIES",
    "TUNE_SCHEMA_VERSION",
    "Choice",
    "ConfigSpace",
    "DEFAULT_TRIAL_CONFIG",
    "SearchBudget",
    "SearchResult",
    "TrialConfig",
    "TrialDB",
    "TrialRecord",
    "config_from_assignment",
    "count_spill_instructions",
    "default_space",
    "default_tune_dir",
    "leaderboard",
    "partition_space",
    "run_search",
    "sda_space",
    "schedule_stall_cycles",
    "trial_metrics",
    "tune_schema_hash",
    "unroll_space",
]
