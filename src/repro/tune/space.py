"""Typed, composable search spaces over compiler configurations.

A space is an ordered product of named :class:`Choice` axes.  Axes are
enumerable in a fixed lexicographic order (first axis most
significant) and samplable from a seeded RNG via mixed-radix index
decoding, so every strategy in :mod:`repro.tune.search` is
deterministic by construction: the same space and seed always yield
the same trial sequence, on any machine and with any worker count.

Axis names are dotted paths into the knobs they tune::

    sda.w  sda.soft_penalty  sda.soft_mode
    unroll.skinny_seed  unroll.fat_seed  unroll.square_seed
    unroll.skinny_aspect  unroll.fat_aspect  unroll.waste_bound
    compiler.max_operators

:func:`config_from_assignment` folds an ``{axis: value}`` assignment
over the paper's defaults into one immutable :class:`TrialConfig`,
which is what the searcher evaluates, the database records and
``CompilerOptions.tuned`` consumes.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.packing.sda import SdaConfig
from repro.core.unroll import UnrollConfig
from repro.errors import TuningError


@dataclass(frozen=True)
class Choice:
    """One named axis: a finite, ordered set of candidate values."""

    name: str
    values: Tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise TuningError("choice name must be non-empty")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise TuningError(f"choice {self.name!r} has no values")
        seen = set()
        for value in self.values:
            key = repr(value)
            if key in seen:
                raise TuningError(
                    f"choice {self.name!r} repeats value {value!r}"
                )
            seen.add(key)

    def __len__(self) -> int:
        return len(self.values)


class ConfigSpace:
    """An ordered product of :class:`Choice` axes.

    ``assignment_at(i)`` decodes index ``i`` (0 .. size-1) into an
    ``{axis: value}`` dict with the *first* axis most significant, so
    enumeration order is the natural nested-loop order and sampling is
    one ``randrange`` per draw.
    """

    def __init__(self, choices: Sequence[Choice]) -> None:
        choices = tuple(choices)
        if not choices:
            raise TuningError("a search space needs at least one axis")
        names = [choice.name for choice in choices]
        if len(set(names)) != len(names):
            raise TuningError(f"duplicate axis names in {names}")
        self.choices = choices

    @property
    def size(self) -> int:
        total = 1
        for choice in self.choices:
            total *= len(choice)
        return total

    def assignment_at(self, index: int) -> Dict[str, object]:
        if not 0 <= index < self.size:
            raise TuningError(
                f"index {index} outside space of size {self.size}"
            )
        assignment: Dict[str, object] = {}
        for choice in reversed(self.choices):
            index, digit = divmod(index, len(choice))
            assignment[choice.name] = choice.values[digit]
        return {choice.name: assignment[choice.name]
                for choice in self.choices}

    def __iter__(self) -> Iterator[Dict[str, object]]:
        for index in range(self.size):
            yield self.assignment_at(index)

    def sample(self, rng: random.Random) -> Dict[str, object]:
        """One uniform draw, deterministic in the RNG state."""
        return self.assignment_at(rng.randrange(self.size))

    def subspace(self, names: Sequence[str]) -> "ConfigSpace":
        """The projection onto a subset of axes (kept in space order)."""
        wanted = set(names)
        unknown = wanted - {choice.name for choice in self.choices}
        if unknown:
            raise TuningError(f"unknown axes {sorted(unknown)}")
        return ConfigSpace(
            [c for c in self.choices if c.name in wanted]
        )


@dataclass(frozen=True)
class TrialConfig:
    """One point of the search space: a full compiler configuration.

    Immutable and content-addressed — ``fingerprint`` is a SHA-256 of
    the canonical JSON payload, the key under which the trial database
    and the bench JSON identify this configuration.
    """

    sda: SdaConfig = field(default_factory=SdaConfig)
    unroll: UnrollConfig = field(default_factory=UnrollConfig)
    max_operators: int = 13

    def __post_init__(self) -> None:
        if not isinstance(self.sda, SdaConfig):
            raise TuningError(
                f"sda must be an SdaConfig, got {type(self.sda).__name__}"
            )
        if not isinstance(self.unroll, UnrollConfig):
            raise TuningError(
                f"unroll must be an UnrollConfig, "
                f"got {type(self.unroll).__name__}"
            )
        if (
            not isinstance(self.max_operators, int)
            or isinstance(self.max_operators, bool)
            or self.max_operators < 2
        ):
            raise TuningError(
                f"max_operators must be an int >= 2, "
                f"got {self.max_operators!r}"
            )

    def to_payload(self) -> Dict:
        """JSON-serializable form (tuples become lists)."""
        return {
            "sda": {
                "w": self.sda.w,
                "soft_penalty": self.sda.soft_penalty,
                "soft_mode": self.sda.soft_mode,
            },
            "unroll": {
                "skinny_aspect": self.unroll.skinny_aspect,
                "fat_aspect": self.unroll.fat_aspect,
                "skinny_seed": list(self.unroll.skinny_seed),
                "fat_seed": list(self.unroll.fat_seed),
                "square_seed": list(self.unroll.square_seed),
                "waste_bound": self.unroll.waste_bound,
            },
            "compiler": {"max_operators": self.max_operators},
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "TrialConfig":
        try:
            sda = payload["sda"]
            unroll = payload["unroll"]
            return cls(
                sda=SdaConfig(
                    w=sda["w"],
                    soft_penalty=sda["soft_penalty"],
                    soft_mode=sda["soft_mode"],
                ),
                unroll=UnrollConfig(
                    skinny_aspect=unroll["skinny_aspect"],
                    fat_aspect=unroll["fat_aspect"],
                    skinny_seed=tuple(unroll["skinny_seed"]),
                    fat_seed=tuple(unroll["fat_seed"]),
                    square_seed=tuple(unroll["square_seed"]),
                    waste_bound=unroll["waste_bound"],
                ),
                max_operators=payload["compiler"]["max_operators"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningError(
                f"malformed trial-config payload: {exc}"
            ) from exc

    @property
    def fingerprint(self) -> str:
        payload = json.dumps(self.to_payload(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def apply(self, options: "CompilerOptions") -> "CompilerOptions":
        """These tuned knobs folded over a base :class:`CompilerOptions`."""
        return replace(
            options,
            sda_config=self.sda,
            unroll_config=self.unroll,
            max_operators=self.max_operators,
            tuned=False,
        )


#: The untuned baseline every search evaluates first.
DEFAULT_TRIAL_CONFIG = TrialConfig()


def config_from_assignment(
    assignment: Dict[str, object],
    base: Optional[TrialConfig] = None,
) -> TrialConfig:
    """Fold an ``{axis: value}`` assignment over ``base``'s knobs."""
    base = base or DEFAULT_TRIAL_CONFIG
    sda_kwargs: Dict[str, object] = {}
    unroll_kwargs: Dict[str, object] = {}
    compiler_kwargs: Dict[str, object] = {}
    targets = {
        "sda": (sda_kwargs, {"w", "soft_penalty", "soft_mode"}),
        "unroll": (
            unroll_kwargs,
            {
                "skinny_aspect", "fat_aspect", "skinny_seed",
                "fat_seed", "square_seed", "waste_bound",
            },
        ),
        "compiler": (compiler_kwargs, {"max_operators"}),
    }
    for name, value in assignment.items():
        prefix, _, knob = name.partition(".")
        if prefix not in targets or not knob:
            raise TuningError(f"unknown axis {name!r}")
        kwargs, known = targets[prefix]
        if knob not in known:
            raise TuningError(f"unknown axis {name!r}")
        kwargs[knob] = value
    try:
        return TrialConfig(
            sda=replace(base.sda, **sda_kwargs),
            unroll=replace(base.unroll, **unroll_kwargs),
            max_operators=compiler_kwargs.get(
                "max_operators", base.max_operators
            ),
        )
    except ValueError as exc:
        raise TuningError(f"invalid assignment: {exc}") from exc


def sda_space(
    w: Sequence[float] = (0.5, 0.7, 0.9),
    soft_penalty: Sequence[float] = (2.0, 8.0, 32.0),
    soft_mode: Sequence[str] = ("sda",),
) -> List[Choice]:
    """Axes over Equation 4's weight and the soft-dependency penalty."""
    return [
        Choice("sda.w", tuple(w)),
        Choice("sda.soft_penalty", tuple(soft_penalty)),
        Choice("sda.soft_mode", tuple(soft_mode)),
    ]


def unroll_space(
    skinny_seed: Sequence[Tuple[int, int]] = (
        (8, 2), (8, 4), (4, 4), (2, 4), (1, 8),
    ),
    fat_seed: Sequence[Tuple[int, int]] = ((2, 8), (4, 8), (4, 4)),
    square_seed: Sequence[Tuple[int, int]] = ((4, 4), (8, 4), (2, 8)),
    waste_bound: Sequence[float] = (0.25, 0.5),
) -> List[Choice]:
    """Axes over the shape-adaptive unroll seeds of Section IV-C."""
    return [
        Choice("unroll.skinny_seed", tuple(skinny_seed)),
        Choice("unroll.fat_seed", tuple(fat_seed)),
        Choice("unroll.square_seed", tuple(square_seed)),
        Choice("unroll.waste_bound", tuple(waste_bound)),
    ]


def partition_space(
    max_operators: Sequence[int] = (9, 13, 17),
) -> List[Choice]:
    """Axis over the GCD2(k) partition budget."""
    return [Choice("compiler.max_operators", tuple(max_operators))]


def default_space() -> ConfigSpace:
    """The full stock search space (SDA x unroll x partition)."""
    return ConfigSpace(
        sda_space() + unroll_space() + partition_space()
    )
