"""Search strategies: grid, seeded random, and successive halving.

Every strategy follows the same discipline:

* **Proposal is deterministic.**  Grid order is the space's
  mixed-radix enumeration; random draws come from one seeded
  ``random.Random``; halving promotes by ``(cycles, fingerprint)``.
  The same (space, strategy, seed) always proposes the same configs in
  the same order, on any machine.

* **Evaluation is order-independent.**  Trials within a batch run on a
  :class:`~concurrent.futures.ProcessPoolExecutor` (the same machinery
  as parallel packing, with the same in-process fallback when workers
  cannot spawn) and results are keyed by config fingerprint, so a
  ``jobs=N`` search records bit-identical trials to ``jobs=1``.

* **Trial 0 is always the paper's default configuration.**  Every
  search therefore measures its own baseline, the best recorded config
  can never lose to the default, and reports can quote a speedup
  without a separate calibration run.

Workers rebuild the model graph from its registry name and share the
content-addressed schedule cache through ``cache_dir``, so re-packing
a body some earlier trial already packed is a disk hit, not a
recompute.

Successive halving evaluates cheap low-fidelity proxies first:
operator-prefix subgraphs (Figure 10's "partial computational graphs
… using contiguous operators"), at 1/4 then 1/2 of the model, keeping
the top half each rung and compiling only the survivors at full
fidelity.  Partial-fidelity records carry their prefix size and are
never eligible for :meth:`~repro.tune.db.TrialDB.best`.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TuningError
from repro.tune.db import (
    STATUS_ERROR,
    STATUS_OK,
    TrialDB,
    TrialRecord,
    default_tune_dir,
    tune_schema_hash,
)
from repro.tune.report import trial_metrics
from repro.tune.space import (
    DEFAULT_TRIAL_CONFIG,
    ConfigSpace,
    TrialConfig,
    config_from_assignment,
    default_space,
)

#: Strategy names accepted by :func:`run_search` and the CLI.
STRATEGIES = ("grid", "random", "halving")


@dataclass(frozen=True)
class SearchBudget:
    """Early-exit limits: trial count and wall-clock seconds.

    ``trials`` bounds how many configurations are *proposed*
    (including the default baseline); ``wall_seconds`` truncates a
    running search between evaluation batches.  Wall truncation trades
    coverage for time and is therefore never used by determinism
    tests.
    """

    trials: int = 8
    wall_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            not isinstance(self.trials, int)
            or isinstance(self.trials, bool)
            or self.trials < 1
        ):
            raise TuningError(
                f"budget needs at least one trial, got {self.trials!r}"
            )
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise TuningError(
                f"wall_seconds must be positive, got {self.wall_seconds!r}"
            )

    def out_of_time(self, started: float) -> bool:
        return (
            self.wall_seconds is not None
            and time.monotonic() - started >= self.wall_seconds
        )


#: One unit of evaluation work, picklable for the process pool:
#: (model name, config payload, operator-prefix fidelity or None,
#: schedule-cache directory or None) with an optional fifth element —
#: the machine (registered name or description) to compile for.
EvalTask = Tuple[str, Dict, Optional[int], Optional[str]]

#: Worker result: (fingerprint, fidelity, status, cycles, metrics,
#: error message or None).
EvalOutcome = Tuple[str, Optional[int], str, Optional[float], Dict,
                    Optional[str]]


def _evaluate_task(task: EvalTask) -> EvalOutcome:
    """Worker body: compile one (model, config) pair and measure it.

    Runs in a separate process; everything it needs is rebuilt from
    picklable names and payloads.  Failures become ``error`` outcomes
    rather than exceptions so one diverging config cannot kill the
    whole batch.
    """
    if len(task) == 5:
        model, payload, fidelity, cache_dir, machine = task
    else:
        model, payload, fidelity, cache_dir = task
        machine = None
    from repro.compiler import CompilerOptions, GCD2Compiler
    from repro.models import build_model

    config = TrialConfig.from_payload(payload)
    try:
        graph = build_model(model)
        if fidelity is not None:
            prefix = [n.node_id for n in graph.nodes()[:fidelity]]
            graph = graph.subgraph(prefix)
        options = config.apply(
            CompilerOptions(cache_dir=cache_dir, machine=machine)
        )
        compiled = GCD2Compiler(options).compile(graph)
    except Exception as exc:  # noqa: BLE001 — any compile failure is data
        return (
            config.fingerprint,
            fidelity,
            STATUS_ERROR,
            None,
            {},
            f"{type(exc).__name__}: {exc}",
        )
    metrics = trial_metrics(compiled)
    return (
        config.fingerprint,
        fidelity,
        STATUS_OK,
        metrics["simulated_cycles"],
        metrics,
        None,
    )


def _evaluate_batch(
    tasks: Sequence[EvalTask], jobs: int
) -> List[EvalOutcome]:
    """Evaluate a batch, in workers when possible, in proposal order.

    ``pool.map`` preserves input order, and in-process fallback is
    trivially ordered, so the returned outcomes line up index-for-index
    with ``tasks`` no matter how the workers were scheduled.
    """
    if jobs > 1 and len(tasks) > 1:
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(_evaluate_task, tasks))
        except (OSError, BrokenProcessPool, RuntimeError):
            pass
    return [_evaluate_task(task) for task in tasks]


def _propose_grid(
    space: ConfigSpace, count: int, base: TrialConfig
) -> List[TrialConfig]:
    """The first ``count`` unique configs in enumeration order."""
    seen = {base.fingerprint}
    out: List[TrialConfig] = []
    for assignment in space:
        if len(out) >= count:
            break
        config = config_from_assignment(assignment, base=base)
        if config.fingerprint in seen:
            continue
        seen.add(config.fingerprint)
        out.append(config)
    return out


def _propose_random(
    space: ConfigSpace, count: int, seed: int, base: TrialConfig
) -> List[TrialConfig]:
    """``count`` unique seeded draws (deduped by fingerprint).

    A space smaller than the ask degrades to grid enumeration — every
    point gets visited and the order stays deterministic.
    """
    if count >= space.size:
        return _propose_grid(space, count, base)
    rng = random.Random(seed)
    seen = {base.fingerprint}
    out: List[TrialConfig] = []
    attempts = 0
    limit = max(64, 50 * count)
    while len(out) < count and attempts < limit:
        attempts += 1
        config = config_from_assignment(space.sample(rng), base=base)
        if config.fingerprint in seen:
            continue
        seen.add(config.fingerprint)
        out.append(config)
    return out


def _halving_rungs(n_nodes: int) -> List[int]:
    """The operator-prefix fidelity ladder for an ``n_nodes`` model."""
    rungs: List[int] = []
    for fraction in (4, 2):
        size = max(2, n_nodes // fraction)
        if size < n_nodes and size not in rungs:
            rungs.append(size)
    return rungs


@dataclass
class SearchResult:
    """Everything one :func:`run_search` call measured."""

    model: str
    strategy: str
    seed: int
    space_size: int
    base_fingerprint: str
    records: List[TrialRecord] = field(default_factory=list)
    truncated: bool = False

    @property
    def full_records(self) -> List[TrialRecord]:
        return [r for r in self.records if r.full_fidelity]

    @property
    def baseline(self) -> Optional[TrialRecord]:
        """The default config's full-fidelity trial (trial 0's config)."""
        for record in self.full_records:
            if record.fingerprint == self.base_fingerprint and record.ok:
                return record
        return None

    @property
    def best(self) -> Optional[TrialRecord]:
        """Winning full-fidelity trial, ties broken by fingerprint."""
        candidates = [
            r for r in self.full_records
            if r.ok and r.cycles is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.cycles, r.fingerprint))

    @property
    def speedup(self) -> Optional[float]:
        """Baseline cycles over best cycles (>= 1.0 by construction)."""
        baseline, best = self.baseline, self.best
        if baseline is None or best is None or not best.cycles:
            return None
        return baseline.cycles / best.cycles


def run_search(
    model: str,
    strategy: str = "random",
    trials: int = 8,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    space: Optional[ConfigSpace] = None,
    db: Optional[TrialDB] = None,
    base: TrialConfig = DEFAULT_TRIAL_CONFIG,
    wall_seconds: Optional[float] = None,
    machine: Optional[str] = None,
) -> SearchResult:
    """Search ``model``'s configuration space for fewer simulated cycles.

    Proposes up to ``trials`` configurations (the default config is
    always trial 0), evaluates them — in parallel across ``jobs``
    worker processes when asked — and appends every trial to the
    database in proposal order.  Returns the in-memory
    :class:`SearchResult`; the same trials are durable in ``db``.
    """
    if strategy not in STRATEGIES:
        raise TuningError(
            f"unknown strategy {strategy!r}; choose from "
            f"{', '.join(STRATEGIES)}"
        )
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise TuningError(f"jobs must be an int >= 1, got {jobs!r}")
    budget = SearchBudget(trials=trials, wall_seconds=wall_seconds)
    space = space or default_space()
    # ``is None``, not truthiness: TrialDB defines __len__, so an
    # *empty* caller-supplied database (a campaign staging DB, say)
    # is falsy and ``db or ...`` would silently swap in the default.
    if db is None:
        db = TrialDB(default_tune_dir(cache_dir), machine=machine)
    record_schema = tune_schema_hash(machine)
    from repro.machine.description import resolve_machine

    machine_name = resolve_machine(machine).name

    from repro.models import build_model

    n_nodes = len(build_model(model))  # also validates the model name
    started = time.monotonic()
    result = SearchResult(
        model=model,
        strategy=strategy,
        seed=seed,
        space_size=space.size,
        base_fingerprint=base.fingerprint,
    )
    trial_index = 0

    def record_batch(
        configs: Sequence[TrialConfig], fidelity: Optional[int]
    ) -> List[TrialRecord]:
        nonlocal trial_index
        tasks = [
            (model, c.to_payload(), fidelity, cache_dir, machine)
            for c in configs
        ]
        outcomes = _evaluate_batch(tasks, jobs)
        by_key = {(o[0], o[1]): o for o in outcomes}
        out: List[TrialRecord] = []
        for config in configs:
            fp, fid, status, cycles, metrics, error = by_key[
                (config.fingerprint, fidelity)
            ]
            record = TrialRecord(
                model=model,
                fingerprint=fp,
                config=config.to_payload(),
                status=status,
                cycles=cycles,
                metrics=metrics,
                strategy=strategy,
                seed=seed,
                trial=trial_index,
                fidelity=fid,
                error=error,
                schema=record_schema,
                machine=machine_name,
            )
            trial_index += 1
            db.append(record)
            result.records.append(record)
            out.append(record)
        return out

    if strategy == "grid":
        proposals = _propose_grid(space, budget.trials - 1, base)
    else:
        proposals = _propose_random(space, budget.trials - 1, seed, base)

    if strategy in ("grid", "random"):
        pending = [base] + proposals
        batch_size = max(1, jobs)
        pos = 0
        while pos < len(pending):
            if pos > 0 and budget.out_of_time(started):
                result.truncated = True
                break
            record_batch(pending[pos:pos + batch_size], None)
            pos += batch_size
        return result

    # Successive halving: rung through operator-prefix fidelities,
    # promote the top half each time, full fidelity for the survivors.
    population = [base] + proposals
    for rung in _halving_rungs(n_nodes):
        if len(population) <= 2:
            break  # nothing left to halve; go straight to full fidelity
        if budget.out_of_time(started):
            result.truncated = True
            break
        rung_records = record_batch(population, rung)
        ranked = sorted(
            (r for r in rung_records if r.ok and r.cycles is not None),
            key=lambda r: (r.cycles, r.fingerprint),
        )
        keep = max(2, (len(ranked) + 1) // 2)
        survivors = {r.fingerprint for r in ranked[:keep]}
        population = [
            c for c in population if c.fingerprint in survivors
        ]
    # The baseline always reaches full fidelity so every search can
    # quote best-vs-default and the DB keeps a comparable default row.
    if base.fingerprint not in {c.fingerprint for c in population}:
        population = [base] + population
    record_batch(population, None)
    return result
