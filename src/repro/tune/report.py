"""Trial diagnostics: metric extraction and the leaderboard reporter.

The tuner's objective is *total simulated cycles*: the packed
schedules' cycles as the simulated machine observes them (per-packet
latency plus soft-RAW stalls, times trip counts) plus the layout
transform cycles Equation 1 charges at operator boundaries.  Unlike
the analytic ``CompiledModel.total_cycles``, this quantity responds to
every knob the tuner turns — unroll seeds change the packed bodies and
trip counts, the SDA config changes the schedules, and the partition
budget changes the selected plans and transforms.

Each trial's compile diagnostics fold into the recorded metrics
(solver used, fallbacks taken), so a surprising number can be traced
to what actually ran.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.machine.packet import Packet
from repro.machine.pipeline import packet_cycles


def schedule_stall_cycles(packets: Sequence[Packet]) -> int:
    """Soft-RAW stall cycles the pipeline charges a packet sequence."""
    stalls = 0
    for packet in packets:
        base = (
            1 if len(packet) == 0
            else max(inst.latency for inst in packet)
        )
        stalls += packet_cycles(packet) - base
    return stalls


def count_spill_instructions(body: Sequence) -> int:
    """Spill traffic the register allocator / codegen emitted.

    Spill loads and stores are tagged by their ``comment`` — the only
    channel that survives lowering — which is what Figure 12's
    "oversized factors lose to register spilling" shows up as.
    """
    return sum(1 for inst in body if "spill" in inst.comment)


def trial_metrics(compiled: "CompiledModel") -> Dict:
    """The deterministic measurements recorded for one trial.

    ``simulated_cycles`` is the search objective; the rest exists so a
    leaderboard row explains *why* a config won (fewer stalls, fewer
    spills, cheaper transforms...).  Wall-clock times and cache hit
    counters are deliberately absent: trial records must be
    bit-identical across runs and worker counts, and cache hits depend
    on which trials happened to run first.
    """
    diag = compiled.diagnostics
    stall_cycles = 0
    spills = 0
    for node in compiled.nodes:
        trips = node.kernel.trips
        stall_cycles += schedule_stall_cycles(node.packets) * trips
        spills += count_spill_instructions(node.schedule_body)
    return {
        "simulated_cycles": float(
            compiled.profile.cycles + compiled.transform_cycles
        ),
        "profile_cycles": int(compiled.profile.cycles),
        "transform_cycles": float(compiled.transform_cycles),
        "analytic_total_cycles": float(compiled.total_cycles),
        "latency_ms": float(compiled.latency_ms),
        "total_packets": int(compiled.total_packets),
        "stall_cycles": int(stall_cycles),
        "spill_instructions": int(spills),
        "slot_occupancy": float(compiled.profile.slot_occupancy),
        "selection_solver": compiled.selection.solver,
        "fallbacks": [str(f) for f in diag.fallbacks],
    }


def leaderboard(
    records: Sequence["TrialRecord"],
    limit: Optional[int] = 10,
    baseline_cycles: Optional[float] = None,
) -> List[Dict]:
    """Rows for :func:`repro.harness.print_rows`, best first.

    Failed trials sink to the bottom with their error; ``speedup`` is
    relative to ``baseline_cycles`` (the default config) when given.
    """
    ok = sorted(
        (r for r in records if r.ok and r.cycles is not None),
        key=lambda r: (r.cycles, r.fingerprint),
    )
    failed = [r for r in records if not r.ok]
    rows: List[Dict] = []
    for record in (ok + failed)[: limit if limit else None]:
        config = record.config
        row = {
            "trial": record.trial,
            "config": record.fingerprint[:12],
            "cycles": record.cycles,
            "speedup": (
                baseline_cycles / record.cycles
                if baseline_cycles and record.cycles
                else None
            ),
            "stalls": record.metrics.get("stall_cycles"),
            "spills": record.metrics.get("spill_instructions"),
            "packets": record.metrics.get("total_packets"),
            "w": config.get("sda", {}).get("w"),
            "p": config.get("sda", {}).get("soft_penalty"),
            "skinny": "-".join(
                str(f)
                for f in config.get("unroll", {}).get("skinny_seed", ())
            ),
            "k": config.get("compiler", {}).get("max_operators"),
            "fidelity": record.fidelity or "full",
            "status": record.status,
        }
        if record.error:
            row["error"] = record.error
        rows.append(row)
    return rows
