"""Append-only trial database: every evaluation the tuner ever ran.

Modeled on experiment-tracking tables (one row per (configuration,
metric) evaluation, keyed by content fingerprint): a JSON-lines file
``trials.jsonl`` under the tune directory, one self-contained record
per line.  Appending is atomic at line granularity, so concurrent
searches interleave whole records rather than corrupting each other.

Every record carries a *schema* hash combining the tune-record layout
version with the machine-model schema of :mod:`repro.cache` — when the
ISA latencies, packet limits or pipeline timing change, every recorded
cycle count describes a machine that no longer exists, and
:meth:`TrialDB.best` silently ignores it (self-invalidation, the same
discipline the schedule cache applies).

Corrupt or stale lines are skipped and counted, never served, and
never abort a read.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cache.fingerprint import schema_hash as machine_schema_hash
from repro.cache.store import default_cache_dir
from repro.errors import TuningError
from repro.machine.description import MachineDescription
from repro.tune.space import TrialConfig

_MachineArg = Optional[Union[str, "MachineDescription"]]

#: Bump when the record layout changes incompatibly.
#: v2: records carry the human-readable machine ``name`` alongside the
#: schema hash, so reports can print the target instead of an opaque
#: per-machine namespace.
TUNE_SCHEMA_VERSION = 2

#: Trial status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def tune_schema_hash(machine: _MachineArg = None) -> str:
    """Hash versioning every trial record.

    Covers the record layout and the machine description the cycle
    counts were measured on (per-target: records tuned for one machine
    are invisible to readers of another); recomputed per call so tests
    that monkeypatch the default machine model are observed.
    """
    descriptor = (
        f"tune-v{TUNE_SCHEMA_VERSION};{machine_schema_hash(machine)}"
    )
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


def default_tune_dir(
    cache_dir: Optional[Union[str, Path]] = None
) -> Path:
    """The trial-database directory for a given cache root.

    Lives alongside the schedule cache (``<cache_dir>/tune``) so one
    ``--cache-dir`` flag carries both the memoized schedules and the
    trial history; with no cache dir it falls back to the user-level
    cache root the schedule cache also uses.
    """
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return root / "tune"


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated (model, configuration) pair.

    ``cycles`` is the objective — total simulated cycles (packed
    schedules observed on the simulated machine plus layout-transform
    cycles).  ``fidelity`` is the operator-prefix size the trial
    compiled (``None`` = the full model); only full-fidelity records
    are eligible for :meth:`TrialDB.best`.
    """

    model: str
    fingerprint: str
    config: Dict
    status: str = STATUS_OK
    cycles: Optional[float] = None
    metrics: Dict = field(default_factory=dict)
    strategy: str = ""
    seed: int = 0
    trial: int = 0
    fidelity: Optional[int] = None
    error: Optional[str] = None
    schema: str = field(default_factory=tune_schema_hash)
    #: Human-readable machine name the cycles were simulated on.  The
    #: ``schema`` hash is what namespaces reads; the name is for
    #: reports, which otherwise could only print the opaque hash.
    machine: str = ""

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_ERROR):
            raise TuningError(f"unknown trial status {self.status!r}")
        if self.status == STATUS_OK and self.cycles is None:
            raise TuningError("an ok trial must record its cycles")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def full_fidelity(self) -> bool:
        return self.fidelity is None

    def trial_config(self) -> TrialConfig:
        return TrialConfig.from_payload(self.config)

    def to_payload(self) -> Dict:
        return {
            "model": self.model,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "status": self.status,
            "cycles": self.cycles,
            "metrics": self.metrics,
            "strategy": self.strategy,
            "seed": self.seed,
            "trial": self.trial,
            "fidelity": self.fidelity,
            "error": self.error,
            "schema": self.schema,
            "machine": self.machine,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "TrialRecord":
        try:
            return cls(
                model=payload["model"],
                fingerprint=payload["fingerprint"],
                config=payload["config"],
                status=payload["status"],
                cycles=payload.get("cycles"),
                metrics=payload.get("metrics", {}),
                strategy=payload.get("strategy", ""),
                seed=payload.get("seed", 0),
                trial=payload.get("trial", 0),
                fidelity=payload.get("fidelity"),
                error=payload.get("error"),
                schema=payload.get("schema", ""),
                machine=payload.get("machine", ""),
            )
        except (KeyError, TypeError) as exc:
            raise TuningError(
                f"malformed trial record: {exc}"
            ) from exc


class TrialDB:
    """The append-only JSONL store under one tune directory.

    ``machine`` namespaces reads: only records whose schema matches
    that machine's tune schema are served.  ``None`` follows the
    process-default machine description live.
    """

    def __init__(
        self, root: Union[str, Path], machine: _MachineArg = None
    ) -> None:
        self.root = Path(root)
        self.path = self.root / "trials.jsonl"
        self.machine = machine
        #: Lines skipped (corrupt or unparsable) during the last read.
        self.skipped_lines = 0

    def __len__(self) -> int:
        return len(self.records(current_only=False))

    def append(self, record: TrialRecord) -> None:
        """Persist one record (one line, flushed before returning)."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_payload(), sort_keys=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(
        self,
        model: Optional[str] = None,
        current_only: bool = True,
    ) -> List[TrialRecord]:
        """All readable records, optionally filtered to one model.

        ``current_only`` drops records written under a different
        schema (stale machine model or record layout).  Corrupt lines
        are counted in ``skipped_lines`` and skipped.
        """
        self.skipped_lines = 0
        if not self.path.is_file():
            return []
        current = tune_schema_hash(self.machine)
        out: List[TrialRecord] = []
        try:
            text = self.path.read_text()
        except OSError:
            return []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = TrialRecord.from_payload(json.loads(line))
            except (json.JSONDecodeError, TuningError):
                self.skipped_lines += 1
                continue
            if current_only and record.schema != current:
                self.skipped_lines += 1
                continue
            if model is not None and record.model != model:
                continue
            out.append(record)
        return out

    def best(self, model: str) -> Optional[TrialRecord]:
        """The winning full-fidelity trial for ``model``.

        Minimum simulated cycles among successful, current-schema,
        full-model records; ties break on fingerprint so the answer is
        stable across readers.
        """
        candidates = [
            r
            for r in self.records(model=model)
            if r.ok and r.full_fidelity and r.cycles is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.cycles, r.fingerprint))

    def best_config(self, model: str) -> Optional[TrialConfig]:
        """The winning configuration, ready for ``CompilerOptions``."""
        record = self.best(model)
        return record.trial_config() if record is not None else None

    def models(self) -> List[str]:
        """Model names with at least one current-schema record."""
        return sorted({r.model for r in self.records()})

    def stats(self) -> Dict:
        """Health digest for status endpoints: usable vs skipped rows.

        ``skipped_lines`` counts corrupt or stale-schema lines found
        during the scan — a corrupted trial DB shows up here as
        degraded (fewer usable records) rather than as a failure.
        """
        records = self.records()
        return {
            "path": str(self.path),
            "records": len(records),
            "skipped_lines": self.skipped_lines,
            "models": sorted({r.model for r in records}),
        }

    def clear(self) -> int:
        """Delete the trial file; returns records removed."""
        removed = len(self.records(current_only=False))
        try:
            self.path.unlink()
        except FileNotFoundError:
            removed = 0
        except OSError:
            return 0
        return removed
