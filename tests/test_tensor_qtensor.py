"""Unit and property tests for quantized tensors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.tensor.layout import Layout
from repro.tensor.qtensor import QTensor

floats = arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-100.0, 100.0, allow_nan=False),
)


class TestQuantize:
    @given(values=floats)
    @settings(max_examples=60, deadline=None)
    def test_symmetric_error_bounded_by_half_step(self, values):
        q = QTensor.quantize(values, symmetric=True)
        error = np.abs(q.dequantize() - values).max()
        assert error <= q.scale / 2 + 1e-9

    @given(values=floats)
    @settings(max_examples=60, deadline=None)
    def test_asymmetric_error_bounded_by_step(self, values):
        q = QTensor.quantize(values, symmetric=False)
        error = np.abs(q.dequantize() - values).max()
        assert error <= q.scale + 1e-9

    def test_symmetric_zero_point_is_zero(self):
        q = QTensor.quantize(np.array([1.0, -2.0, 3.0]), symmetric=True)
        assert q.zero_point == 0

    def test_payload_is_int8(self):
        q = QTensor.quantize(np.linspace(-1, 1, 100))
        assert q.data.dtype == np.int8
        assert q.data.min() >= -128 and q.data.max() <= 127

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            QTensor.quantize(np.array([]))

    def test_all_zero_input(self):
        q = QTensor.quantize(np.zeros(10))
        assert (q.dequantize() == 0).all()

    def test_quantization_error_metric(self):
        values = np.linspace(-1, 1, 50)
        q = QTensor.quantize(values)
        assert q.quantization_error(values) < q.scale


class TestQTensor:
    def test_scale_must_be_positive(self):
        with pytest.raises(QuantizationError):
            QTensor(np.zeros(4, dtype=np.int8), scale=0.0)
        with pytest.raises(QuantizationError):
            QTensor(np.zeros(4, dtype=np.int8), scale=-1.0)

    def test_logical_shape_defaults_to_data_shape(self):
        q = QTensor(np.zeros((2, 3), dtype=np.int8), scale=1.0)
        assert q.shape == (2, 3)

    def test_packed_payload_with_logical_shape(self):
        q = QTensor(
            np.zeros(256, dtype=np.int8),
            scale=0.5,
            layout=Layout.COL4,
            logical_shape=(5, 5),
        )
        assert q.shape == (5, 5)
        assert q.size_bytes == 256

    def test_dequantize_uses_zero_point(self):
        q = QTensor(np.array([10], dtype=np.int8), scale=0.5, zero_point=4)
        assert q.dequantize()[0] == pytest.approx(3.0)
