"""Unit tests for the pipeline timing model."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet
from repro.machine.pipeline import (
    PipelineModel,
    packet_cycles,
    schedule_cycles,
    soft_raw_pairs,
)


def _load(dest, addr="r_a"):
    return Instruction(Opcode.VLOAD, dests=(dest,), srcs=(addr,))


def _add(dest, a, b):
    return Instruction(Opcode.VADD, dests=(dest,), srcs=(a, b))


def _store(src):
    return Instruction(Opcode.VSTORE, srcs=(src, "r_out"))


class TestFigure4Arithmetic:
    def test_packed_soft_pair_takes_four_cycles(self):
        # Figure 4(a): two 3-cycle instructions, soft RAW, one packet.
        packet = Packet([_load("v1"), _add("v3", "v1", "v2")])
        assert packet_cycles(packet) == 4

    def test_unpacked_pair_takes_six_cycles(self):
        schedule = [
            Packet([_load("v1")]),
            Packet([_add("v3", "v1", "v2")]),
        ]
        assert schedule_cycles(schedule) == 6

    def test_store_after_write_stalls(self):
        # Figure 4(b).
        packet = Packet([_add("v3", "v1", "v2"), _store("v3")])
        assert packet_cycles(packet) == 3 + 1


class TestStallChains:
    def test_independent_packet_has_no_stall(self):
        packet = Packet([_load("v1"), _add("v5", "v3", "v4")])
        assert soft_raw_pairs(packet) == []
        assert packet_cycles(packet) == 3

    def test_two_producers_one_consumer_stall_once(self):
        # Waits overlap: one stall, not two.
        packet = Packet(
            [_load("v1", "r_a"), _load("v2", "r_b"), _add("v3", "v1", "v2")]
        )
        assert len(soft_raw_pairs(packet)) == 2
        assert packet_cycles(packet) == 4

    def test_chain_stalls_accumulate(self):
        # load -> add -> store all in one packet: two stall links.
        packet = Packet([_load("v1"), _add("v3", "v1", "v2"), _store("v3")])
        assert packet_cycles(packet) == 5

    def test_war_pairs_do_not_stall(self):
        reader = _add("v9", "v1", "v2")
        writer = _load("v1", "r_b")
        packet = Packet([reader, writer])
        assert packet_cycles(packet) == 3

    def test_empty_packet_costs_one(self):
        assert packet_cycles(Packet([])) == 1

    def test_mixed_latency_packet_costs_max(self):
        packet = Packet(
            [
                Instruction(Opcode.ADD, dests=("r1",), srcs=("r0",)),
                _add("v1", "v2", "v3"),
            ]
        )
        assert packet_cycles(packet) == 3


class TestPipelineModel:
    def test_cycle_conversions(self):
        model = PipelineModel(clock_ghz=2.0)
        assert model.cycles_to_seconds(2e9) == pytest.approx(1.0)
        assert model.cycles_to_ms(2e6) == pytest.approx(1.0)

    def test_schedule_ms(self):
        model = PipelineModel(clock_ghz=1.0)
        schedule = [Packet([_load("v1")])] * 2
        assert model.schedule_ms(schedule) == pytest.approx(6 / 1e6)

    def test_schedule_cycles_sums(self):
        schedule = [
            Packet([_load("v1")]),
            Packet([_store("v9")]),
        ]
        assert schedule_cycles(schedule) == 3 + 2
