"""Unit tests for the pipeline timing model."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet
from repro.machine.pipeline import (
    PipelineModel,
    packet_cycles,
    schedule_cycles,
    soft_raw_pairs,
)


def _load(dest, addr="r_a"):
    return Instruction(Opcode.VLOAD, dests=(dest,), srcs=(addr,))


def _add(dest, a, b):
    return Instruction(Opcode.VADD, dests=(dest,), srcs=(a, b))


def _store(src):
    return Instruction(Opcode.VSTORE, srcs=(src, "r_out"))


class TestFigure4Arithmetic:
    def test_packed_soft_pair_takes_four_cycles(self):
        # Figure 4(a): two 3-cycle instructions, soft RAW, one packet.
        packet = Packet([_load("v1"), _add("v3", "v1", "v2")])
        assert packet_cycles(packet) == 4

    def test_unpacked_pair_takes_six_cycles(self):
        schedule = [
            Packet([_load("v1")]),
            Packet([_add("v3", "v1", "v2")]),
        ]
        assert schedule_cycles(schedule) == 6

    def test_store_after_write_stalls(self):
        # Figure 4(b).
        packet = Packet([_add("v3", "v1", "v2"), _store("v3")])
        assert packet_cycles(packet) == 3 + 1


class TestStallChains:
    def test_independent_packet_has_no_stall(self):
        packet = Packet([_load("v1"), _add("v5", "v3", "v4")])
        assert soft_raw_pairs(packet) == []
        assert packet_cycles(packet) == 3

    def test_two_producers_one_consumer_stall_once(self):
        # Waits overlap: one stall, not two.
        packet = Packet(
            [_load("v1", "r_a"), _load("v2", "r_b"), _add("v3", "v1", "v2")]
        )
        assert len(soft_raw_pairs(packet)) == 2
        assert packet_cycles(packet) == 4

    def test_chain_stalls_accumulate(self):
        # load -> add -> store all in one packet: two stall links.
        packet = Packet([_load("v1"), _add("v3", "v1", "v2"), _store("v3")])
        assert packet_cycles(packet) == 5

    def test_war_pairs_do_not_stall(self):
        reader = _add("v9", "v1", "v2")
        writer = _load("v1", "r_b")
        packet = Packet([reader, writer])
        assert packet_cycles(packet) == 3

    def test_empty_packet_costs_one(self):
        assert packet_cycles(Packet([])) == 1

    def test_mixed_latency_packet_costs_max(self):
        packet = Packet(
            [
                Instruction(Opcode.ADD, dests=("r1",), srcs=("r0",)),
                _add("v1", "v2", "v3"),
            ]
        )
        assert packet_cycles(packet) == 3


def _bypassed_packet(*instructions):
    """Build a packet without legality checks, as a fault corrupts one."""
    packet = Packet([])
    packet.instructions.extend(instructions)
    return packet


class TestImplicitAccumulatorStalls:
    """Regression: RAW edges through implicit accumulator reads stall.

    ``vrmpy``/``vtmpy`` accumulate forms read their destination even
    when no emitter lists it in ``srcs``.  The old ``soft_raw_pairs``
    intersected ``producer.dests & consumer.srcs`` and priced such a
    pair at zero stalls, disagreeing with the lint estimator (which
    reads ``read_registers``) on corrupted packets.
    """

    def test_load_into_implicit_accumulator_stalls(self):
        load = _load("v_acc")
        mac = Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        assert "v_acc" in mac.read_registers  # implicit accumulate operand
        packet = _bypassed_packet(load, mac)
        assert len(soft_raw_pairs(packet)) == 1
        assert packet_cycles(packet) == 3 + 1

    def test_explicit_accumulator_priced_the_same(self):
        # The codegen's explicit-accumulator form must cost identically.
        load = _load("v_acc")
        mac = Instruction(
            Opcode.VRMPY, dests=("v_acc",), srcs=("v_in", "v_acc")
        )
        packet = _bypassed_packet(load, mac)
        assert len(soft_raw_pairs(packet)) == 1
        assert packet_cycles(packet) == 3 + 1

    def test_vector_alu_raw_still_free_of_stall_rule(self):
        # A vector ALU producer is not an interlocked case: no load, no
        # store, no scalar ALU — the pair must not be priced as a stall.
        first = _add("v1", "v2", "v3")
        second = Instruction(Opcode.VRMPY, dests=("v1",), srcs=("v4",))
        packet = _bypassed_packet(first, second)
        assert soft_raw_pairs(packet) == []


class TestLongChainIteration:
    def test_chain_past_recursion_limit(self):
        # A scalar-ALU chain far past the interpreter recursion limit:
        # the walk must be iterative.  Only a corrupted packet can hold
        # one, which is exactly where fault injection prices packets.
        import sys

        length = sys.getrecursionlimit() + 1000
        chain = [
            Instruction(
                Opcode.ADD, dests=(f"r{i + 1}",), srcs=(f"r{i}",)
            )
            for i in range(length)
        ]
        packet = _bypassed_packet(*chain)
        assert len(soft_raw_pairs(packet)) == length - 1
        assert packet_cycles(packet) == 1 + (length - 1)


class TestPipelineModel:
    def test_cycle_conversions(self):
        model = PipelineModel(clock_ghz=2.0)
        assert model.cycles_to_seconds(2e9) == pytest.approx(1.0)
        assert model.cycles_to_ms(2e6) == pytest.approx(1.0)

    def test_schedule_ms(self):
        model = PipelineModel(clock_ghz=1.0)
        schedule = [Packet([_load("v1")])] * 2
        assert model.schedule_ms(schedule) == pytest.approx(6 / 1e6)

    def test_schedule_cycles_sums(self):
        schedule = [
            Packet([_load("v1")]),
            Packet([_store("v9")]),
        ]
        assert schedule_cycles(schedule) == 3 + 2
