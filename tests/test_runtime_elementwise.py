"""Tests for the runtime's integer elementwise kernels."""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.runtime.executor import QuantizedExecutor


def _run_both(build, feeds, seed=0):
    graph = build()
    compiled = compile_model(graph)
    quantized = QuantizedExecutor(compiled, seed=seed).run(feeds)
    reference = ReferenceExecutor(compiled.graph, seed=seed).run(feeds)
    return quantized, reference


class TestQuantizedAdd:
    def _graph(self):
        b = GraphBuilder("add")
        x = b.input((1, 8, 8, 8), name="x")
        y = b.input((1, 8, 8, 8), name="y")
        b.add(x, y, name="sum")
        return b.build()

    def test_add_tracks_reference(self):
        rng = np.random.default_rng(0)
        feeds = {
            "x": rng.normal(size=(1, 8, 8, 8)),
            "y": rng.normal(size=(1, 8, 8, 8)),
        }
        q, f = _run_both(self._graph, feeds)
        scale = np.abs(f["sum"]).max()
        assert np.abs(q["sum"] - f["sum"]).max() / scale < 0.05

    def test_sub_tracks_reference(self):
        b = GraphBuilder("sub")
        x = b.input((1, 4, 4, 4), name="x")
        y = b.input((1, 4, 4, 4), name="y")
        b.sub(x, y, name="diff")
        rng = np.random.default_rng(1)
        feeds = {
            "x": rng.normal(size=(1, 4, 4, 4)),
            "y": rng.normal(size=(1, 4, 4, 4)),
        }
        q, f = _run_both(lambda: b.build(), feeds)
        scale = max(1e-6, np.abs(f["diff"]).max())
        assert np.abs(q["diff"] - f["diff"]).max() / scale < 0.05

    def test_broadcast_add(self):
        b = GraphBuilder("badd")
        x = b.input((1, 8, 4, 4), name="x")
        y = b.input((1, 8, 1, 1), name="y")
        b.add(x, y, name="sum")
        rng = np.random.default_rng(2)
        feeds = {
            "x": rng.normal(size=(1, 8, 4, 4)),
            "y": rng.normal(size=(1, 8, 1, 1)),
        }
        q, f = _run_both(lambda: b.build(), feeds)
        scale = np.abs(f["sum"]).max()
        assert np.abs(q["sum"] - f["sum"]).max() / scale < 0.05


class TestQuantizedRelu:
    def test_relu_exact_zero_cut(self):
        b = GraphBuilder("relu")
        x = b.input((1, 4, 8, 8), name="x")
        b.relu(x, name="act")
        rng = np.random.default_rng(3)
        feeds = {"x": rng.normal(size=(1, 4, 8, 8))}
        q, f = _run_both(lambda: b.build(), feeds)
        # Negative inputs must map to exactly zero (symmetric levels).
        assert (q["act"] >= 0).all()
        scale = np.abs(f["act"]).max()
        assert np.abs(q["act"] - f["act"]).max() / scale < 0.05


class TestResidualChain:
    def test_conv_residual_quantized_pipeline(self):
        # conv -> add -> relu exercises all integer paths in sequence.
        b = GraphBuilder("res")
        x = b.input((1, 4, 8, 8), name="x")
        c = b.conv2d(x, 4, kernel=3, name="conv")
        s = b.add(x, c, name="sum")
        b.relu(s, name="act")
        rng = np.random.default_rng(4)
        feeds = {"x": rng.normal(size=(1, 4, 8, 8))}
        q, f = _run_both(lambda: b.build(), feeds, seed=9)
        scale = np.abs(f["act"]).max()
        assert np.abs(q["act"] - f["act"]).max() / scale < 0.12
