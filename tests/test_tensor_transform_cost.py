"""Unit tests for the TC (layout transformation) cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.layout import Layout, padded_size
from repro.tensor.transform_cost import (
    DRAM_BYTES_PER_CYCLE,
    ONCHIP_BYTES_PER_CYCLE,
    TRANSFORM_SETUP_CYCLES,
    transform_cycles,
)


class TestTransformCycles:
    def test_same_layout_is_free(self):
        # Equation 1: TC is zero when no transformation is required.
        for layout in Layout:
            assert transform_cycles(100, 100, layout, layout) == 0

    def test_cost_scales_with_tensor_size(self):
        # Rows chosen as multiples of every panel height so padding
        # does not blur the 10x size ratio.
        small = transform_cycles(128, 64, Layout.COL1, Layout.COL4)
        large = transform_cycles(1280, 64, Layout.COL1, Layout.COL4)
        assert large > small
        assert large - TRANSFORM_SETUP_CYCLES >= 9 * (
            small - TRANSFORM_SETUP_CYCLES
        )

    def test_cost_uses_larger_padded_size(self):
        # 10 rows: COL1 pads to 128, COL4 to 32 — reading/writing the
        # bigger padding dominates either direction.
        a_to_b = transform_cycles(10, 10, Layout.COL1, Layout.COL4)
        b_to_a = transform_cycles(10, 10, Layout.COL4, Layout.COL1)
        assert a_to_b == b_to_a

    def test_dram_tier_slower_than_onchip(self):
        onchip = transform_cycles(
            512, 64, Layout.COL1, Layout.COL2,
            bytes_per_cycle=ONCHIP_BYTES_PER_CYCLE,
        )
        dram = transform_cycles(
            512, 64, Layout.COL1, Layout.COL2,
            bytes_per_cycle=DRAM_BYTES_PER_CYCLE,
        )
        assert dram > onchip

    def test_element_bytes_scale(self):
        int8 = transform_cycles(128, 128, Layout.COL1, Layout.COL2)
        int32 = transform_cycles(
            128, 128, Layout.COL1, Layout.COL2, element_bytes=4
        )
        assert int32 > int8

    @given(
        rows=st.integers(1, 300),
        cols=st.integers(1, 50),
        src=st.sampled_from(list(Layout)),
        dst=st.sampled_from(list(Layout)),
    )
    @settings(max_examples=50, deadline=None)
    def test_cost_nonnegative_and_symmetric_in_padding(self, rows, cols, src, dst):
        cost = transform_cycles(rows, cols, src, dst)
        assert cost >= 0
        if src is not dst:
            expected_bytes = 2 * max(
                padded_size(rows, cols, src), padded_size(rows, cols, dst)
            )
            assert cost >= expected_bytes / 64  # sane lower bound
