"""Unit tests for execution-plan enumeration."""

import pytest

from repro.core.plans import (
    ExecutionPlan,
    INSTRUCTION_LAYOUT,
    PRIMARY_INSTRUCTIONS,
    enumerate_plans,
    plan_count,
)
from repro.graph import ops
from repro.graph.graph import ComputationalGraph
from repro.isa.instructions import Opcode
from repro.tensor.layout import Layout
from tests.conftest import small_cnn


def _graph_with(op, input_shape=(1, 8, 16, 16)):
    g = ComputationalGraph()
    x = g.add(ops.Input(shape=input_shape))
    node = g.add(op, [x.node_id])
    return g, node


class TestInstructionLayouts:
    def test_figure2_pairings(self):
        assert INSTRUCTION_LAYOUT[Opcode.VMPY] is Layout.COL1
        assert INSTRUCTION_LAYOUT[Opcode.VMPA] is Layout.COL2
        assert INSTRUCTION_LAYOUT[Opcode.VRMPY] is Layout.COL4


class TestEnumeration:
    def test_compute_heavy_gets_primary_instructions(self):
        _, node = _graph_with(ops.Conv2D(out_channels=4))
        plans = enumerate_plans(node)
        assert {p.instruction for p in plans} == set(PRIMARY_INSTRUCTIONS)
        for plan in plans:
            assert plan.layout is INSTRUCTION_LAYOUT[plan.instruction]

    def test_extensions_add_vtmpy_for_3_wide_kernels(self):
        _, node = _graph_with(ops.Conv2D(out_channels=4, kernel=3))
        plans = enumerate_plans(node, include_extensions=True)
        assert Opcode.VTMPY in {p.instruction for p in plans}
        assert Opcode.VMPYE in {p.instruction for p in plans}

    def test_no_vtmpy_for_1x1(self):
        _, node = _graph_with(
            ops.Conv2D(out_channels=4, kernel=1, padding=0)
        )
        plans = enumerate_plans(node, include_extensions=True)
        assert Opcode.VTMPY not in {p.instruction for p in plans}

    def test_transparent_ops_get_all_layouts(self):
        _, node = _graph_with(ops.ReLU())
        plans = enumerate_plans(node)
        assert {p.layout for p in plans} == set(Layout)
        assert all(p.instruction is None for p in plans)

    def test_layout_transform_ops_are_row_major_only(self):
        _, node = _graph_with(ops.Reshape(target=(1, -1)))
        plans = enumerate_plans(node)
        assert len(plans) == 1
        assert plans[0].layout is Layout.ROW_MAJOR

    def test_inputs_are_row_major_only(self):
        g = ComputationalGraph()
        node = g.add(ops.Input(shape=(1, 4)))
        plans = enumerate_plans(node)
        assert len(plans) == 1
        assert plans[0].layout is Layout.ROW_MAJOR

    def test_constants_offer_every_layout(self):
        g = ComputationalGraph()
        node = g.add(ops.Constant(shape=(4, 4)))
        assert {p.layout for p in enumerate_plans(node)} == set(Layout)


class TestPlanObjects:
    def test_frozen_and_hashable(self):
        plan = ExecutionPlan(Opcode.VMPY, Layout.COL1)
        assert plan == ExecutionPlan(Opcode.VMPY, Layout.COL1)
        assert len({plan, ExecutionPlan(Opcode.VMPA, Layout.COL2)}) == 2

    def test_label(self):
        assert ExecutionPlan(Opcode.VMPY, Layout.COL1).label == (
            "vmpy/1-column"
        )
        assert "passthrough" in ExecutionPlan(None, Layout.ROW_MAJOR).label


class TestPlanCount:
    def test_search_space_is_product(self):
        g = small_cnn()
        count = plan_count(g)
        expected = 1
        for node in g:
            expected *= len(enumerate_plans(node))
        assert count == expected
        assert count > 1000  # the exponential blow-up the paper cites
