"""Tests for the content-addressed schedule cache (repro.cache)."""

import json

import pytest

from repro.cache import (
    DiskStore,
    ScheduleCache,
    ScheduleEntry,
    body_signature,
    instruction_identity,
    kernel_fingerprint,
    schema_hash,
)
from repro.cache import fingerprint as fingerprint_mod
from repro.cache.parallel import pack_parallel
from repro.core.packing import PACKERS
from repro.core.packing.sda import SdaConfig
from repro.core.unroll import UnrollConfig
from repro.codegen.matmul import emit_matmul_body
from repro.isa.instructions import Instruction, Opcode
from repro.machine.pipeline import schedule_cycles


def _body(shift: int = 3):
    return [
        Instruction(Opcode.VSPLAT, dests=("v0",), imms=(64,),
                    lane_bytes=4),
        Instruction(Opcode.VASR, dests=("v1",), srcs=("v0",),
                    imms=(shift,)),
        Instruction(Opcode.VADD, dests=("v2",), srcs=("v1", "v1"),
                    lane_bytes=4),
    ]


def _entry(body):
    packets = PACKERS["sda"](body)
    return ScheduleEntry(
        body=list(body), packets=packets,
        cycles=schedule_cycles(packets),
    )


class TestFingerprint:
    def test_identity_covers_imms_and_lane_bytes(self):
        inst = _body()[1]
        identity = instruction_identity(inst)
        assert inst.imms in (identity[3],)
        assert identity[4] == inst.lane_bytes

    def test_uid_and_comment_do_not_affect_identity(self):
        a = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"))
        b = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"),
                        comment="different")
        assert instruction_identity(a) == instruction_identity(b)
        assert a.uid != b.uid

    def test_imms_change_fingerprint(self):
        assert kernel_fingerprint(_body(1), "sda") != \
            kernel_fingerprint(_body(2), "sda")

    def test_lane_bytes_change_fingerprint(self):
        narrow = _body()
        wide = _body()
        wide[2] = Instruction(
            Opcode.VADD, dests=("v2",), srcs=("v1", "v1"), lane_bytes=1
        )
        assert kernel_fingerprint(narrow, "sda") != \
            kernel_fingerprint(wide, "sda")

    def test_packer_name_changes_fingerprint(self):
        body = _body()
        assert kernel_fingerprint(body, "sda") != \
            kernel_fingerprint(body, "list")

    def test_sda_config_changes_fingerprint(self):
        body = _body()
        assert kernel_fingerprint(body, "sda") != kernel_fingerprint(
            body, "sda", SdaConfig(w=0.3)
        )

    def test_unroll_config_changes_fingerprint(self):
        body = _body()
        default = kernel_fingerprint(body, "sda")
        tuned = kernel_fingerprint(
            body, "sda", None, UnrollConfig(skinny_seed=(8, 4))
        )
        assert default != tuned
        # An explicitly-passed default config is the same address as
        # no config at all, so warm caches survive the new argument.
        assert kernel_fingerprint(
            body, "sda", None, UnrollConfig()
        ) == default

    def test_fingerprint_is_stable_across_instances(self):
        assert kernel_fingerprint(_body(), "sda") == \
            kernel_fingerprint(_body(), "sda")

    def test_body_signature_is_order_sensitive(self):
        body = _body()
        assert body_signature(body) != body_signature(body[::-1])

    def test_schema_hash_tracks_schema_version(self, monkeypatch):
        before = schema_hash()
        monkeypatch.setattr(
            fingerprint_mod, "CACHE_SCHEMA_VERSION", 999
        )
        assert schema_hash() != before


class TestScheduleEntryRoundTrip:
    def test_payload_round_trip(self):
        entry = _entry(emit_matmul_body(Opcode.VRMPY, 2, 2,
                                        include_epilogue=True))
        rebuilt = ScheduleEntry.from_payload(entry.to_payload("fp"))
        assert rebuilt.cycles == entry.cycles
        assert len(rebuilt.body) == len(entry.body)
        assert body_signature(rebuilt.body) == body_signature(entry.body)
        assert [len(p) for p in rebuilt.packets] == \
            [len(p) for p in entry.packets]

    def test_out_of_creation_order_body_round_trips(self):
        # Regression: lowered bodies are not always assembled in
        # instruction-creation order, and Packet.soft_pairs orients
        # soft dependencies by uid.  Rebuilding with fresh uids in body
        # order flipped those pairs and changed the stall count, so the
        # load-time cycle cross-check rejected the entry (a permanent
        # warm miss).  uid_rank in the payload preserves the ordering.
        store_inst = Instruction(
            Opcode.VSTORE, dests=(), srcs=("v1", "r_out"), imms=(0,)
        )
        producer = Instruction(  # created later, placed earlier
            Opcode.VADD, dests=("v1",), srcs=("v0", "v0"), lane_bytes=4
        )
        body = [producer, store_inst]
        assert body[0].uid > body[1].uid
        entry = _entry(body)
        rebuilt = ScheduleEntry.from_payload(entry.to_payload("fp"))
        assert rebuilt.cycles == entry.cycles
        assert rebuilt.body[0].uid > rebuilt.body[1].uid

    def test_rebuilt_packets_reference_rebuilt_body(self):
        entry = _entry(_body())
        rebuilt = ScheduleEntry.from_payload(entry.to_payload("fp"))
        body_uids = {inst.uid for inst in rebuilt.body}
        for packet in rebuilt.packets:
            for inst in packet:
                assert inst.uid in body_uids


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        store = DiskStore(tmp_path)
        entry = _entry(_body())
        assert store.store("abc", entry)
        loaded = store.load("abc")
        assert loaded is not None
        assert loaded.cycles == entry.cycles

    def test_missing_entry_is_none(self, tmp_path):
        assert DiskStore(tmp_path).load("nope") is None

    def test_corrupt_entry_dropped(self, tmp_path):
        store = DiskStore(tmp_path)
        store.store("abc", _entry(_body()))
        path = store.path_for("abc")
        path.write_text("{ not json")
        assert store.load("abc") is None
        assert not path.exists()

    def test_tampered_cycles_rejected(self, tmp_path):
        store = DiskStore(tmp_path)
        store.store("abc", _entry(_body()))
        path = store.path_for("abc")
        payload = json.loads(path.read_text())
        payload["cycles"] = payload["cycles"] + 1
        path.write_text(json.dumps(payload))
        assert store.load("abc") is None

    def test_stale_schema_generation_never_read(
        self, tmp_path, monkeypatch
    ):
        store = DiskStore(tmp_path)
        store.store("abc", _entry(_body()))
        monkeypatch.setattr(
            fingerprint_mod, "CACHE_SCHEMA_VERSION", 999
        )
        fresh = DiskStore(tmp_path)
        assert fresh.load("abc") is None
        assert len(fresh.generations()) == 1  # old gen still on disk

    def test_clear_removes_all_generations(self, tmp_path, monkeypatch):
        store = DiskStore(tmp_path)
        store.store("abc", _entry(_body()))
        monkeypatch.setattr(
            fingerprint_mod, "CACHE_SCHEMA_VERSION", 999
        )
        DiskStore(tmp_path).store("def", _entry(_body()))
        removed = DiskStore(tmp_path).clear()
        assert removed == 2
        assert DiskStore(tmp_path).generations() == []


class TestScheduleCache:
    def test_memory_hit_after_put(self):
        cache = ScheduleCache(memory_entries=4)
        cache.put("a", _entry(_body()))
        entry, tier = cache.lookup("a")
        assert entry is not None and tier == "memory"
        assert cache.stats.memory_hits == 1

    def test_miss_recorded(self):
        cache = ScheduleCache()
        entry, tier = cache.lookup("missing")
        assert entry is None and tier == "miss"
        assert cache.stats.misses == 1

    def test_lru_evicts_oldest(self):
        cache = ScheduleCache(memory_entries=1)
        cache.put("a", _entry(_body(1)))
        cache.put("b", _entry(_body(2)))
        assert len(cache) == 1
        assert cache.lookup("a")[1] == "miss"
        assert cache.lookup("b")[1] == "memory"

    def test_disk_tier_promotes_to_memory(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        writer.put("a", _entry(_body()))
        reader = ScheduleCache(disk_dir=tmp_path)
        entry, tier = reader.lookup("a")
        assert entry is not None and tier == "disk"
        entry, tier = reader.lookup("a")
        assert tier == "memory"

    def test_memory_only_without_disk_dir(self, tmp_path):
        cache = ScheduleCache()
        assert cache.disk is None
        cache.put("a", _entry(_body()))
        assert list(tmp_path.iterdir()) == []

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScheduleCache(memory_entries=0)


class TestPackParallel:
    def test_results_match_serial_packing(self):
        bodies = {
            f"fp{i}": _body(i + 1) for i in range(3)
        }
        tasks = [
            (fp, "sda", body) for fp, body in sorted(bodies.items())
        ]
        results, report = pack_parallel(tasks, jobs=2)
        assert set(results) == set(bodies)
        assert report.tasks == 3
        for fp, body in bodies.items():
            expected = PACKERS["sda"](body)
            assert results[fp].cycles == schedule_cycles(expected)

    def test_worker_packets_reference_returned_body(self):
        tasks = [("fp", "sda", _body())]
        results, _ = pack_parallel(tasks, jobs=2)
        entry = results["fp"]
        body_uids = {inst.uid for inst in entry.body}
        for packet in entry.packets:
            for inst in packet:
                assert inst.uid in body_uids

    def test_report_utilization_bounded(self):
        results, report = pack_parallel(
            [("fp", "sda", _body())], jobs=2
        )
        assert 0.0 <= report.utilization <= 1.0
