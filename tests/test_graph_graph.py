"""Unit tests for the computational graph container."""

import pytest

from repro.errors import GraphError
from repro.graph import ops
from repro.graph.graph import ComputationalGraph
from tests.conftest import chain_graph, small_cnn


class TestConstruction:
    def test_add_infers_shapes(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 3, 8, 8)))
        conv = g.add(ops.Conv2D(out_channels=4, kernel=3), [x.node_id])
        assert conv.output_shape == (1, 4, 8, 8)

    def test_unknown_input_rejected(self):
        g = ComputationalGraph()
        with pytest.raises(GraphError):
            g.add(ops.ReLU(), [42])

    def test_duplicate_names_rejected(self):
        g = ComputationalGraph()
        g.add(ops.Input(shape=(1,)), name="x")
        with pytest.raises(GraphError):
            g.add(ops.Input(shape=(1,)), name="x")

    def test_auto_names_unique(self):
        g = ComputationalGraph()
        a = g.add(ops.Input(shape=(1,)))
        b = g.add(ops.ReLU(), [a.node_id])
        c = g.add(ops.ReLU(), [b.node_id])
        assert b.name != c.name


class TestQueries:
    def test_topological_iteration(self):
        g = small_cnn()
        seen = set()
        for node in g:
            assert all(i in seen for i in node.inputs)
            seen.add(node.node_id)

    def test_predecessors_and_successors(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 4, 4, 4)))
        a = g.add(ops.ReLU(), [x.node_id])
        b = g.add(ops.ReLU(), [x.node_id])
        add = g.add(ops.Add(), [a.node_id, b.node_id])
        assert {n.node_id for n in g.successors(x.node_id)} == {
            a.node_id, b.node_id
        }
        assert {n.node_id for n in g.predecessors(add.node_id)} == {
            a.node_id, b.node_id
        }
        assert g.out_degree(x.node_id) == 2

    def test_missing_node_raises(self):
        g = ComputationalGraph()
        with pytest.raises(GraphError):
            g.node(0)

    def test_inputs_and_outputs(self):
        g = small_cnn()
        assert [n.op_type for n in g.input_nodes()] == ["Input"]
        assert len(g.output_nodes()) == 1

    def test_operator_count_excludes_sources(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 4)))
        c = g.add(ops.Constant(shape=(1, 4)))
        g.add(ops.Add(), [x.node_id, c.node_id])
        assert g.operator_count() == 1
        assert g.operator_count(exclude_io=False) == 3

    def test_edges(self):
        g = chain_graph(length=3)
        edges = g.edges()
        assert len(edges) == 3  # input->op0->op1->op2

    def test_total_macs_positive_for_convs(self):
        assert small_cnn().total_macs() > 0

    def test_node_macs_and_dims(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 4, 8, 8)))
        conv = g.add(
            ops.Conv2D(out_channels=8, kernel=1, padding=0), [x.node_id]
        )
        assert g.node_macs(conv.node_id) == 64 * 4 * 8
        assert g.node_matmul_dims(conv.node_id) == (64, 4, 8)


class TestStructure:
    def test_chain_detection(self):
        assert chain_graph().is_linear_chain()
        assert not small_cnn().is_linear_chain()  # residual fan-out

    def test_subgraph_contiguous(self):
        g = small_cnn()
        ids = [n.node_id for n in g][:5]
        sub = g.subgraph(ids)
        assert len(sub) >= 5
        sub.validate()

    def test_subgraph_adds_placeholder_inputs(self):
        g = small_cnn()
        # Take a middle slice: its upstream dependency must become Input.
        ids = [n.node_id for n in g][3:6]
        sub = g.subgraph(ids)
        assert any(n.op_type == "Input" for n in sub)

    def test_subgraph_preserves_shapes(self):
        g = small_cnn()
        ids = [n.node_id for n in g][:6]
        sub = g.subgraph(ids)
        by_name = {n.name: n for n in sub}
        for node in g:
            if node.node_id in ids and node.name in by_name:
                assert by_name[node.name].output_shape == node.output_shape

    def test_validate_passes_for_builders(self):
        small_cnn().validate()
        chain_graph().validate()
