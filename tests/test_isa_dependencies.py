"""Unit tests for hard/soft dependency classification (Section IV-C)."""

import pytest

from repro.isa.dependencies import (
    DependencyKind,
    classify_dependency,
    has_dependency,
)
from repro.isa.instructions import Instruction, Opcode


def _inst(opcode, dests=(), srcs=()):
    return Instruction(opcode, dests=dests, srcs=srcs)


class TestRawClassification:
    def test_load_to_consumer_is_soft(self):
        # Figure 4(a): read after loading.
        load = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_ad",))
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        assert classify_dependency(load, add) is DependencyKind.SOFT

    def test_producer_to_store_is_soft(self):
        # Figure 4(b): store after writing.
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        store = _inst(Opcode.VSTORE, srcs=("v3", "r_ad"))
        assert classify_dependency(add, store) is DependencyKind.SOFT

    def test_scalar_alu_to_consumer_is_soft(self):
        # Section IV-C's worked example: "a scalar addition operation
        # and a consumer of the result of such an addition".
        bump = _inst(Opcode.ADD, dests=("r_a",), srcs=("r_a",))
        load = _inst(Opcode.VLOAD, dests=("v0",), srcs=("r_a",))
        assert classify_dependency(bump, load) is DependencyKind.SOFT

    def test_vector_arith_to_vector_arith_is_hard(self):
        first = _inst(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        second = _inst(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        assert classify_dependency(first, second) is DependencyKind.HARD

    def test_multiply_to_consumer_is_hard(self):
        mult = _inst(Opcode.VRMPY, dests=("v_acc",), srcs=("v0",))
        shift = _inst(Opcode.VASR, dests=("v_q",), srcs=("v_acc",))
        assert classify_dependency(mult, shift) is DependencyKind.HARD


class TestWarWaw:
    def test_war_is_soft(self):
        reader = _inst(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        writer = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        assert classify_dependency(reader, writer) is DependencyKind.SOFT

    def test_waw_is_hard(self):
        first = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        second = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_b",))
        assert classify_dependency(first, second) is DependencyKind.HARD

    def test_waw_dominates_soft_raw(self):
        # Same pair has both a soft-RAW and a WAW: hard wins.
        first = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        second = _inst(Opcode.VADD, dests=("v1",), srcs=("v1", "v0"))
        assert classify_dependency(first, second) is DependencyKind.HARD


class TestNoDependency:
    def test_disjoint_registers(self):
        a = _inst(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        b = _inst(Opcode.VADD, dests=("v3",), srcs=("v2", "v2"))
        assert classify_dependency(a, b) is DependencyKind.NONE
        assert not has_dependency(a, b)

    def test_self_dependency_is_none(self):
        a = _inst(Opcode.VADD, dests=("v1",), srcs=("v1",))
        assert classify_dependency(a, a) is DependencyKind.NONE


class TestSectionIVCEdgeCases:
    """Pin the Section IV-C table on its less obvious corners."""

    def test_store_address_operand_raw_is_soft(self):
        # RAW into a store's *address* operand (not the data operand)
        # still lands in the producer->store row: stores are soft
        # consumers whichever operand carries the dependence.
        addr = _inst(Opcode.VADD, dests=("v_ad",), srcs=("v0", "v1"))
        store = _inst(Opcode.VSTORE, srcs=("v_data", "v_ad"))
        assert classify_dependency(addr, store) is DependencyKind.SOFT

    def test_scalar_alu_to_store_chain_is_soft(self):
        # Scalar address bump feeding a store: soft twice over (SALU
        # producer AND store consumer).
        bump = _inst(Opcode.ADD, dests=("r_ad",), srcs=("r_ad",))
        store = _inst(Opcode.VSTORE, srcs=("v_data", "r_ad"))
        assert classify_dependency(bump, store) is DependencyKind.SOFT

    def test_scalar_alu_chain_is_soft(self):
        first = _inst(Opcode.ADD, dests=("r_a",), srcs=("r_a",))
        second = _inst(Opcode.SUB, dests=("r_b",), srcs=("r_a",))
        assert classify_dependency(first, second) is DependencyKind.SOFT

    def test_self_dependency_any_opcode_is_none(self):
        # classify(i, i) is NONE even for accumulate forms, which read
        # and write the same register.
        acc = _inst(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        assert classify_dependency(acc, acc) is DependencyKind.NONE

    def test_implicit_accumulator_raw_is_visible(self):
        # Producer writes v_acc; a vrmpy accumulate form reads it
        # implicitly (dest not in srcs).  The RAW must be seen — and it
        # coincides with a WAW on v_acc, so the pair is hard.
        init = _inst(Opcode.VSPLAT, dests=("v_acc",))
        acc = _inst(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        assert classify_dependency(init, acc) is DependencyKind.HARD

    def test_implicit_accumulator_war_is_soft(self):
        # An accumulate form's implicit read followed by an overwrite
        # of the accumulator: WAR, always soft.
        acc = _inst(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        clobber = _inst(Opcode.VSPLAT, dests=("v_other",), srcs=())
        war = _inst(Opcode.VADD, dests=("v_in",), srcs=("v_zero", "v_zero"))
        assert classify_dependency(acc, war) is DependencyKind.SOFT
        assert classify_dependency(acc, clobber) is DependencyKind.NONE

    def test_vector_raw_into_store_data_still_soft(self):
        # Figure 4(b) exactly: vector multiply result stored.
        mul = _inst(Opcode.VMPY, dests=("v_p",), srcs=("v_a", "v_b"))
        store = _inst(Opcode.VSTORE, srcs=("v_p", "r_ad"))
        assert classify_dependency(mul, store) is DependencyKind.SOFT


class TestKindProperties:
    def test_only_hard_blocks_packing(self):
        assert DependencyKind.HARD.blocks_packing
        assert not DependencyKind.SOFT.blocks_packing
        assert not DependencyKind.NONE.blocks_packing

    def test_has_dependency_covers_soft(self):
        load = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_ad",))
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        assert has_dependency(load, add)
