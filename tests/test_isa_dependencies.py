"""Unit tests for hard/soft dependency classification (Section IV-C)."""

import pytest

from repro.isa.dependencies import (
    DependencyKind,
    classify_dependency,
    has_dependency,
)
from repro.isa.instructions import Instruction, Opcode


def _inst(opcode, dests=(), srcs=()):
    return Instruction(opcode, dests=dests, srcs=srcs)


class TestRawClassification:
    def test_load_to_consumer_is_soft(self):
        # Figure 4(a): read after loading.
        load = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_ad",))
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        assert classify_dependency(load, add) is DependencyKind.SOFT

    def test_producer_to_store_is_soft(self):
        # Figure 4(b): store after writing.
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        store = _inst(Opcode.VSTORE, srcs=("v3", "r_ad"))
        assert classify_dependency(add, store) is DependencyKind.SOFT

    def test_scalar_alu_to_consumer_is_soft(self):
        # Section IV-C's worked example: "a scalar addition operation
        # and a consumer of the result of such an addition".
        bump = _inst(Opcode.ADD, dests=("r_a",), srcs=("r_a",))
        load = _inst(Opcode.VLOAD, dests=("v0",), srcs=("r_a",))
        assert classify_dependency(bump, load) is DependencyKind.SOFT

    def test_vector_arith_to_vector_arith_is_hard(self):
        first = _inst(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        second = _inst(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        assert classify_dependency(first, second) is DependencyKind.HARD

    def test_multiply_to_consumer_is_hard(self):
        mult = _inst(Opcode.VRMPY, dests=("v_acc",), srcs=("v0",))
        shift = _inst(Opcode.VASR, dests=("v_q",), srcs=("v_acc",))
        assert classify_dependency(mult, shift) is DependencyKind.HARD


class TestWarWaw:
    def test_war_is_soft(self):
        reader = _inst(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        writer = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        assert classify_dependency(reader, writer) is DependencyKind.SOFT

    def test_waw_is_hard(self):
        first = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        second = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_b",))
        assert classify_dependency(first, second) is DependencyKind.HARD

    def test_waw_dominates_soft_raw(self):
        # Same pair has both a soft-RAW and a WAW: hard wins.
        first = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        second = _inst(Opcode.VADD, dests=("v1",), srcs=("v1", "v0"))
        assert classify_dependency(first, second) is DependencyKind.HARD


class TestNoDependency:
    def test_disjoint_registers(self):
        a = _inst(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        b = _inst(Opcode.VADD, dests=("v3",), srcs=("v2", "v2"))
        assert classify_dependency(a, b) is DependencyKind.NONE
        assert not has_dependency(a, b)

    def test_self_dependency_is_none(self):
        a = _inst(Opcode.VADD, dests=("v1",), srcs=("v1",))
        assert classify_dependency(a, a) is DependencyKind.NONE


class TestKindProperties:
    def test_only_hard_blocks_packing(self):
        assert DependencyKind.HARD.blocks_packing
        assert not DependencyKind.SOFT.blocks_packing
        assert not DependencyKind.NONE.blocks_packing

    def test_has_dependency_covers_soft(self):
        load = _inst(Opcode.VLOAD, dests=("v1",), srcs=("r_ad",))
        add = _inst(Opcode.VADD, dests=("v3",), srcs=("v1", "v2"))
        assert has_dependency(load, add)
