"""Unit and property tests for the Figure 2 data layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.tensor.layout import (
    Layout,
    _offsets,
    convert,
    pack,
    padded_shape,
    padded_size,
    unpack,
)

dims = st.integers(1, 200)


class TestPaddedShapes:
    def test_panel_granularities(self):
        assert Layout.COL1.row_panel == 128
        assert Layout.COL2.row_panel == 64
        assert Layout.COL4.row_panel == 32
        assert Layout.COL2.col_group == 2
        assert Layout.COL4.col_group == 4

    def test_padded_shape_rounds_up(self):
        assert padded_shape(100, 5, Layout.COL1) == (128, 5)
        assert padded_shape(100, 5, Layout.COL2) == (128, 6)
        assert padded_shape(100, 5, Layout.COL4) == (128, 8)
        assert padded_shape(100, 5, Layout.ROW_MAJOR) == (100, 5)

    def test_invalid_dims_rejected(self):
        with pytest.raises(LayoutError):
            padded_shape(0, 5, Layout.COL1)
        with pytest.raises(LayoutError):
            padded_shape(5, -1, Layout.COL2)

    def test_table2_data_sizes(self):
        # Table II's padding column: 32x32 operands.
        assert padded_size(32, 32, Layout.COL1) == 128 * 32
        assert padded_size(32, 32, Layout.COL2) == 64 * 32
        assert padded_size(32, 32, Layout.COL4) == 32 * 32


class TestFigure2Offsets:
    def test_col1_matches_figure_2a(self):
        off = _offsets(256, 4, Layout.COL1)
        assert off[0, 0] == 0
        assert off[1, 0] == 1          # column-major within panel
        assert off[127, 0] == 127
        assert off[0, 1] == 128        # next column starts a new run
        assert off[127, 3] == 511
        assert off[128, 0] == 512      # second panel

    def test_col2_matches_figure_2b(self):
        off = _offsets(64, 4, Layout.COL2)
        assert off[0, 0] == 0 and off[0, 1] == 1    # "0, 1"
        assert off[1, 0] == 2 and off[1, 1] == 3    # "2, 3"
        assert off[63, 1] == 127                    # "126, 127"
        assert off[0, 2] == 128 and off[0, 3] == 129  # "128, 129"

    def test_col4_matches_figure_2c(self):
        off = _offsets(32, 8, Layout.COL4)
        assert list(off[0, :4]) == [0, 1, 2, 3]     # "0, 1, 2, 3"
        assert list(off[1, :4]) == [4, 5, 6, 7]     # "4, 5, 6, 7"
        assert off[31, 3] == 127                    # "124..127"
        assert off[0, 4] == 128                     # "128, 129, 130, 131"

    def test_offsets_are_a_permutation(self):
        for layout in Layout:
            off = _offsets(70, 9, layout)
            flat = np.sort(off.reshape(-1))
            assert (flat == np.arange(off.size)).all()


class TestPackUnpack:
    @given(rows=dims, cols=dims, layout=st.sampled_from(list(Layout)))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, rows, cols, layout):
        rng = np.random.default_rng(rows * 1000 + cols)
        matrix = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
        packed = pack(matrix, layout)
        assert packed.size == padded_size(rows, cols, layout)
        assert (unpack(packed, rows, cols, layout) == matrix).all()

    def test_padding_is_zero(self):
        matrix = np.ones((10, 3), dtype=np.int8)
        packed = pack(matrix, Layout.COL4)
        assert packed.sum() == 30  # only the real elements are non-zero

    def test_contiguous_column_in_col1(self):
        # The property that makes vmpy's operand fetch a single vload.
        matrix = np.arange(128 * 4).reshape(128, 4).astype(np.int32)
        packed = pack(matrix, Layout.COL1)
        assert (packed[:128] == matrix[:, 0]).all()

    def test_pack_requires_2d(self):
        with pytest.raises(LayoutError):
            pack(np.zeros(10, dtype=np.int8), Layout.COL1)

    def test_unpack_size_checked(self):
        with pytest.raises(LayoutError):
            unpack(np.zeros(10, dtype=np.int8), 4, 4, Layout.COL1)


class TestConvert:
    @given(
        rows=st.integers(1, 150),
        cols=st.integers(1, 20),
        src=st.sampled_from(list(Layout)),
        dst=st.sampled_from(list(Layout)),
    )
    @settings(max_examples=40, deadline=None)
    def test_convert_preserves_content(self, rows, cols, src, dst):
        rng = np.random.default_rng(rows + cols)
        matrix = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
        converted = convert(pack(matrix, src), rows, cols, src, dst)
        assert (unpack(converted, rows, cols, dst) == matrix).all()

    def test_same_layout_is_copy(self):
        matrix = np.ones((8, 8), dtype=np.int8)
        packed = pack(matrix, Layout.COL4)
        out = convert(packed, 8, 8, Layout.COL4, Layout.COL4)
        assert (out == packed).all()
        out[0] = 99
        assert packed[0] != 99
