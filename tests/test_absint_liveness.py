"""The shared liveness pass and its three consumers agreeing."""

import numpy as np
import pytest

from repro.absint.liveness import (
    TensorLiveness,
    final_unread_definitions,
    last_use_positions,
    tensor_liveness,
)
from repro.models import build_model, model_names
from tests.conftest import chain_graph, small_cnn


class TestPrimitives:
    def test_last_use_positions(self):
        assert last_use_positions({"a": [0, 4, 2], "b": []}) == {"a": 4}

    def test_final_unread_definitions(self):
        defs = {"x": [0, 3], "y": [1], "z": [5]}
        uses = {"x": [4], "y": [2], "z": [5]}
        # x's last def (3) is read at 4 -> not live-out.
        # y's last def (1) is read at 2 -> not live-out.
        # z's read at its own position doesn't count (reads precede
        # writes), so its definition is live-out.
        assert final_unread_definitions(defs, uses) == {"z": 5}

    def test_live_out_matches_register_scan(self):
        # The lint dataflow pass delegates to the same primitive; a
        # brute-force reference over random chains keeps them honest.
        rng = np.random.default_rng(3)
        for _ in range(50):
            defs = {
                k: sorted(rng.integers(0, 20, rng.integers(0, 4)))
                for k in "abcd"
            }
            uses = {
                k: sorted(rng.integers(0, 20, rng.integers(0, 4)))
                for k in "abcd"
            }
            expected = {}
            for key, positions in defs.items():
                if not positions:
                    continue
                last_def = max(positions)
                if not any(u > last_def for u in uses.get(key, [])):
                    expected[key] = last_def
            assert final_unread_definitions(defs, uses) == expected


class TestGraphLiveness:
    def test_small_cnn_facts(self):
        graph = small_cnn()
        lv = tensor_liveness(graph)
        assert isinstance(lv, TensorLiveness)
        assert len(lv.order) == len(list(graph))
        outputs = {n.node_id for n in graph.output_nodes()}
        assert lv.keep == outputs
        for node_id in outputs:
            assert lv.death(node_id) == lv.end

    def test_death_is_after_last_use(self):
        graph = chain_graph(length=5)
        lv = tensor_liveness(graph)
        for node in graph:
            for input_id in node.inputs:
                assert lv.death(input_id) >= lv.position[node.node_id]

    def test_frees_partition_the_dying_tensors(self):
        lv = tensor_liveness(small_cnn())
        freed = [
            node_id
            for pos in range(lv.end)
            for node_id in lv.frees_at(pos)
        ]
        assert len(freed) == len(set(freed))
        for node_id in freed:
            assert node_id not in lv.keep
            assert lv.frees_at(lv.last_use[node_id])


class TestConsumersAgree:
    """Engine, lint and planner all read the same last-use facts."""

    @pytest.mark.parametrize("name", model_names())
    def test_zoo_consumers_agree(self, name):
        graph = build_model(name)
        lv = tensor_liveness(graph)

        # Engine semantics: replay the use-count countdown run_batch
        # performs and record when each tensor would be deleted.
        remaining = dict(lv.use_counts)
        engine_death = {}
        for pos, node in enumerate(graph):
            for input_id in node.inputs:
                remaining[input_id] -= 1
                if (
                    remaining[input_id] == 0
                    and input_id not in lv.keep
                ):
                    engine_death[input_id] = pos
        for node_id, death in engine_death.items():
            assert lv.death(node_id) == death
            assert node_id in lv.frees_at(death)

        # Lint primitive over the same def/use chains.
        defs = {n.node_id: [lv.position[n.node_id]] for n in graph}
        uses = {}
        for pos, node in enumerate(graph):
            for input_id in node.inputs:
                uses.setdefault(input_id, []).append(pos)
        live_out = final_unread_definitions(defs, uses)
        for node_id in live_out:
            assert lv.use_counts.get(node_id, 0) == 0 or (
                lv.last_use[node_id] <= lv.position[node_id]
            )

        # Planner semantics: every slot interval matches liveness.
        from repro.absint.memplan import plan_memory, plannable

        plan = plan_memory(graph, lv)
        planned = set(plan.slots)
        for slot in plan.slots.values():
            assert slot.birth == lv.position[slot.node_id]
            assert slot.death == lv.death(slot.node_id)
        for node in graph:
            if plannable(node, lv):
                assert node.node_id in planned
