"""The emitted per-model executor: source properties, diagnostics,
fingerprints, fallback seams."""

import numpy as np
import pytest

from repro.codegen import emit_executor, set_emit_fault_hook
from repro.compiler import compile_model
from repro.harness import example_feeds
from repro.runtime import InferenceEngine, QuantizedExecutor
from repro.verify.runtime import (
    RuntimeVerificationError,
    verify_engine_parity,
)
from tests.conftest import chain_graph, small_cnn


def _codegen_engine(graph, requests=4, *, arena=True, **kwargs):
    """(compiled, calibration, feeds, codegen-engine)."""
    compiled = compile_model(graph)
    executor = QuantizedExecutor(compiled, seed=0, kernel_mac_limit=0)
    calibration = executor.calibrate(
        example_feeds(compiled.graph, count=2, seed=99)
    )
    feeds = example_feeds(compiled.graph, count=requests, seed=7)
    engine = InferenceEngine(
        compiled,
        calibration,
        seed=0,
        kernel_mac_limit=kwargs.pop("kernel_mac_limit", 0),
        arena=arena,
        codegen=True,
        **kwargs,
    )
    return compiled, calibration, feeds, engine


class TestEmission:
    def test_emitted_source_is_straight_line_python(self):
        compiled, calibration, feeds, engine = _codegen_engine(small_cnn())
        try:
            engine.run_batch(feeds)
            emitted = engine._emitted
            assert emitted is not None
            # One `# -- name (Op)` banner per graph node, in order.
            banners = [
                line.strip()
                for line in emitted.source.splitlines()
                if line.strip().startswith("# -- ")
            ]
            assert len(banners) == len(list(compiled.graph))
            # The emitted module compiles standalone.
            compile(emitted.source, "<emitted>", "exec")
            assert emitted.stacked_nodes + emitted.sample_nodes == len(
                banners
            )
            assert emitted.stacked_nodes > 0
        finally:
            engine.close()

    def test_fingerprint_is_stable_across_emissions(self):
        graph = small_cnn()
        _, _, feeds, first = _codegen_engine(graph)
        _, _, _, second = _codegen_engine(graph)
        try:
            first.run_batch(feeds)
            second.run_batch(feeds)
            assert first._emitted.fingerprint == second._emitted.fingerprint
            assert first._emitted.source == second._emitted.source
        finally:
            first.close()
            second.close()

    def test_diagnostics_record_emit_time_and_fingerprint(self):
        _, _, feeds, engine = _codegen_engine(small_cnn())
        try:
            engine.run_batch(feeds)
            diag = engine.diagnostics
            assert diag.codegen_batches == 1
            assert diag.codegen_emit_ms is not None
            assert diag.codegen_emit_ms > 0
            assert diag.codegen_fingerprint == engine._emitted.fingerprint
            assert any(
                "codegen" in line for line in diag.summary_lines()
            )
        finally:
            engine.close()

    def test_parity_all_modes(self):
        for arena in (False, True):
            _, _, feeds, engine = _codegen_engine(
                small_cnn(), arena=arena
            )
            try:
                report = verify_engine_parity(
                    engine, feeds, require_codegen=True
                )
                assert report["samples"] == len(feeds)
            finally:
                engine.close()

    def test_parity_with_instruction_kernels(self):
        # kernel_mac_limit=None routes GEMMs through the semantic-level
        # instruction kernels — the emitted code must follow.
        _, _, feeds, engine = _codegen_engine(
            chain_graph(length=4, size=8),
            requests=2,
            kernel_mac_limit=None,
        )
        try:
            verify_engine_parity(engine, feeds, require_codegen=True)
        finally:
            engine.close()


class TestFallback:
    def test_emit_failure_degrades_to_interpreter(self):
        def boom(compiled):
            raise RuntimeError("chaos-emit")

        previous = set_emit_fault_hook(boom)
        try:
            _, _, feeds, engine = _codegen_engine(small_cnn())
            try:
                outputs = engine.run_batch(feeds)
                assert len(outputs) == len(feeds)
                assert "chaos-emit" in engine._codegen_error
                assert engine.diagnostics.codegen_batches == 0
                assert any(
                    "emission failed" in warning
                    for warning in engine.diagnostics.warnings
                )
                # The degraded engine still passes plain parity...
                verify_engine_parity(engine, feeds)
                # ...but fails the gate that demands emitted execution.
                with pytest.raises(RuntimeVerificationError):
                    verify_engine_parity(
                        engine, feeds, require_codegen=True
                    )
            finally:
                engine.close()
        finally:
            set_emit_fault_hook(previous)

    def test_recalibration_invalidates_emitted_code(self):
        compiled, _, feeds, engine = _codegen_engine(small_cnn())
        try:
            engine.run_batch(feeds)
            first = engine._emitted
            assert first is not None
            engine.calibrate(
                example_feeds(compiled.graph, count=2, seed=11)
            )
            assert engine._emitted is None
            engine.run_batch(feeds)
            assert engine._emitted is not first
            verify_engine_parity(engine, feeds, require_codegen=True)
        finally:
            engine.close()

    def test_emit_failure_latches_until_recalibration(self):
        def boom(compiled):
            raise RuntimeError("chaos-emit")

        previous = set_emit_fault_hook(boom)
        compiled, _, feeds, engine = _codegen_engine(small_cnn())
        try:
            engine.run_batch(feeds)
            assert engine._codegen_error is not None
            set_emit_fault_hook(previous)
            # The error latches: no re-emission attempt per batch.
            engine.run_batch(feeds)
            assert engine.diagnostics.codegen_batches == 0
            # Recalibration clears it and emission succeeds.
            engine.calibrate(
                example_feeds(compiled.graph, count=2, seed=99)
            )
            engine.run_batch(feeds)
            assert engine._codegen_error is None
            assert engine.diagnostics.codegen_batches == 1
        finally:
            set_emit_fault_hook(previous)
            engine.close()


class TestDirectEmission:
    def test_emit_executor_runs_standalone(self):
        compiled = compile_model(small_cnn())
        executor = QuantizedExecutor(compiled, seed=0, kernel_mac_limit=0)
        calibration = executor.calibrate(
            example_feeds(compiled.graph, count=2, seed=99)
        )
        feeds = example_feeds(compiled.graph, count=3, seed=7)
        emitted = emit_executor(
            compiled, calibration, executor, kernel_mac_limit=0
        )
        outputs, rows = emitted.fn(list(feeds), None, None)
        expected = [executor.run(f) for f in feeds]
        assert rows > 0
        for got, want in zip(outputs, expected):
            assert set(got) == set(want)
            for key in want:
                assert np.array_equal(got[key], want[key])
