"""Unit tests for the cycle cost model (Table II calibration included)."""

import pytest

from repro.core.cost import (
    CostModel,
    STREAM_BYTES_PER_CYCLE,
    elementwise_cycles,
    gemm_cycles,
    gemm_padded_bytes,
    gemm_padded_dims,
    tensor_2d_view,
)
from repro.core.plans import ExecutionPlan
from repro.errors import SelectionError
from repro.graph import ops
from repro.graph.graph import ComputationalGraph
from repro.isa.instructions import Opcode
from repro.tensor.layout import Layout

#: Paper Table II: winning instruction per square size.
TABLE2_WINNERS = {
    32: Opcode.VRMPY,
    64: Opcode.VMPA,
    96: Opcode.VRMPY,
    128: Opcode.VMPY,
}

PRIMARY = (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY)


class TestGemmPadding:
    def test_vmpy_pads_rows_to_128(self):
        assert gemm_padded_dims(Opcode.VMPY, 100, 10, 10) == (128, 10, 10)

    def test_vmpa_pads_rows_64_cols_2(self):
        assert gemm_padded_dims(Opcode.VMPA, 100, 10, 9) == (128, 10, 10)

    def test_vrmpy_pads_rows_32_k_and_n_4(self):
        assert gemm_padded_dims(Opcode.VRMPY, 100, 9, 9) == (128, 12, 12)

    def test_table2_data_size_column(self):
        # Paper Table II, normalized by vmpy: 32^3 row is 1.0/0.56/0.33.
        base = gemm_padded_bytes(Opcode.VMPY, 32, 32, 32)
        vmpa = gemm_padded_bytes(Opcode.VMPA, 32, 32, 32)
        vrmpy = gemm_padded_bytes(Opcode.VRMPY, 32, 32, 32)
        assert vmpa / base == pytest.approx(0.56, abs=0.01)
        assert vrmpy / base == pytest.approx(0.33, abs=0.01)

    def test_table2_data_size_96(self):
        base = gemm_padded_bytes(Opcode.VMPY, 96, 96, 96)
        assert gemm_padded_bytes(Opcode.VMPA, 96, 96, 96) / base == (
            pytest.approx(1.0)
        )
        assert gemm_padded_bytes(Opcode.VRMPY, 96, 96, 96) / base == (
            pytest.approx(0.82, abs=0.01)
        )


class TestTable2Latency:
    @pytest.mark.parametrize("size,winner", TABLE2_WINNERS.items())
    def test_winning_instruction_matches_paper(self, size, winner):
        costs = {
            instr: gemm_cycles(instr, size, size, size)
            for instr in PRIMARY
        }
        assert min(costs, key=costs.get) is winner

    def test_latency_ratios_within_tolerance(self):
        # Paper row 64: vmpa 0.69, vrmpy 0.76 (+-0.12 modelling slack).
        base = gemm_cycles(Opcode.VMPY, 64, 64, 64)
        assert gemm_cycles(Opcode.VMPA, 64, 64, 64) / base == (
            pytest.approx(0.69, abs=0.12)
        )
        assert gemm_cycles(Opcode.VRMPY, 64, 64, 64) / base == (
            pytest.approx(0.76, abs=0.12)
        )

    def test_cost_monotone_in_every_dimension(self):
        for instr in PRIMARY:
            base = gemm_cycles(instr, 256, 64, 64)
            assert gemm_cycles(instr, 512, 64, 64) > base
            assert gemm_cycles(instr, 256, 128, 64) > base
            assert gemm_cycles(instr, 256, 64, 128) > base

    def test_non_gemm_instruction_rejected(self):
        with pytest.raises(SelectionError):
            gemm_cycles(Opcode.VADD, 10, 10, 10)


class TestElementwiseCycles:
    def test_linear_in_vectors(self):
        small = elementwise_cycles(128 * 10)
        large = elementwise_cycles(128 * 100)
        assert large > small

    def test_partial_vector_rounds_up(self):
        assert elementwise_cycles(1) == elementwise_cycles(128)


class TestTensor2dView:
    def test_nchw_maps_channels_to_columns(self):
        assert tensor_2d_view((1, 64, 14, 14)) == (196, 64)

    def test_sequence(self):
        assert tensor_2d_view((1, 128, 312)) == (128, 312)

    def test_matrix_and_vector(self):
        assert tensor_2d_view((7, 9)) == (7, 9)
        assert tensor_2d_view((5,)) == (1, 5)
        assert tensor_2d_view(()) == (1, 1)


class TestCostModel:
    def _conv_graph(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 64, 28, 28)))
        conv = g.add(
            ops.Conv2D(out_channels=64, kernel=3), [x.node_id]
        )
        relu = g.add(ops.ReLU(), [conv.node_id])
        return g, conv, relu

    def test_sources_cost_nothing(self):
        g, conv, _ = self._conv_graph()
        model = CostModel()
        input_node = g.node(0)
        plan = model.plans(input_node)[0]
        assert model.node_cost(g, input_node, plan) == 0.0

    def test_compute_node_requires_instruction(self):
        g, conv, _ = self._conv_graph()
        model = CostModel()
        bad = ExecutionPlan(instruction=None, layout=Layout.COL1)
        with pytest.raises(SelectionError):
            model.node_cost(g, conv, bad)

    def test_memory_roofline_binds_elementwise(self):
        g, _, relu = self._conv_graph()
        model = CostModel()
        plan = ExecutionPlan(None, Layout.COL4)
        compute, memory = model.node_cost_detail(g, relu, plan)
        # A big elementwise op moves ~2x50k bytes: memory wins.
        assert memory > compute
        assert model.node_cost(g, relu, plan) == pytest.approx(
            memory, rel=1e-6
        )

    def test_packing_factor_scales(self):
        g, conv, _ = self._conv_graph()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        base = CostModel().node_cost(g, conv, plan)
        slowed = CostModel(packing_factor=2.0).node_cost(g, conv, plan)
        assert slowed > base

    def test_edge_cost_zero_for_matching_layouts(self):
        g, conv, relu = self._conv_graph()
        model = CostModel()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        same = ExecutionPlan(None, Layout.COL4)
        assert model.edge_cost(g, conv, plan, relu, same) == 0.0

    def test_edge_cost_positive_for_mismatch(self):
        g, conv, relu = self._conv_graph()
        model = CostModel()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        other = ExecutionPlan(None, Layout.COL1)
        assert model.edge_cost(g, conv, plan, relu, other) > 0.0

    def test_constant_edges_free(self):
        g = ComputationalGraph()
        c = g.add(ops.Constant(shape=(64, 64)))
        x = g.add(ops.Input(shape=(1, 10, 64)))
        mm = g.add(ops.MatMul(), [x.node_id, c.node_id])
        model = CostModel()
        const_plan = ExecutionPlan(None, Layout.ROW_MAJOR)
        mm_plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        assert model.edge_cost(g, c, const_plan, g.node(mm.node_id), mm_plan) == 0.0

    def test_boundary_cost_only_for_outputs(self):
        g, conv, relu = self._conv_graph()
        model = CostModel()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        assert model.boundary_cost(g, conv, plan) == 0.0  # has consumer
        out_plan = ExecutionPlan(None, Layout.COL4)
        assert model.boundary_cost(g, relu, out_plan) > 0.0
        row_major = ExecutionPlan(None, Layout.ROW_MAJOR)
        assert model.boundary_cost(g, relu, row_major) == 0.0

    def test_other_opts_reduce_division_cost(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 4, 32, 32)))
        y = g.add(ops.Input(shape=(1, 4, 32, 32)))
        div = g.add(ops.Div(), [x.node_id, y.node_id])
        plan = ExecutionPlan(None, Layout.ROW_MAJOR)
        with_lut = CostModel(other_opts=True)._raw_node_cost(g, div, plan)
        without = CostModel(other_opts=False)._raw_node_cost(g, div, plan)
        scalar = CostModel(
            other_opts=False, scalar_activations=True
        )._raw_node_cost(g, div, plan)
        assert with_lut < without < scalar

    def test_fused_activation_adds_epilogue(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 64, 28, 28)))
        plain_op = ops.Conv2D(out_channels=64, kernel=3)
        plain = g.add(plain_op, [x.node_id])
        fused_op = ops.Conv2D(out_channels=64, kernel=3)
        fused_op.fused_activation = "relu"
        fused = g.add(fused_op, [x.node_id])
        model = CostModel()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        assert model._raw_node_cost(g, g.node(fused.node_id), plan) > (
            model._raw_node_cost(g, g.node(plain.node_id), plan)
        )
