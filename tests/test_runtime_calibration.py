"""Frozen calibration: measure once, run int8 forever after.

The contract under test is the PR's tentpole split: ``calibrate``
runs the float reference model, ``run`` never does.  The probe is a
call counter on :meth:`ReferenceExecutor._eval` — the only way float
semantics execute — so the tests fail loudly if a per-request float
pass ever sneaks back into the runtime.
"""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.errors import QuantizationError
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.harness import example_feeds
from repro.runtime.calibration import FrozenCalibration, calibrate_graph
from repro.runtime.executor import QuantizedExecutor
from tests.conftest import small_cnn


def _count_reference_evals(monkeypatch, executor):
    """Patch the executor's reference `_eval` with a counting wrapper."""
    counter = {"calls": 0}
    original = executor.reference._eval

    def counting_eval(node, inputs, feeds):
        counter["calls"] += 1
        return original(node, inputs, feeds)

    monkeypatch.setattr(executor.reference, "_eval", counting_eval)
    return counter


class TestFrozenCalibration:
    def test_bounds_are_read_only(self):
        calibration = FrozenCalibration(bounds={1: 2.0})
        with pytest.raises(TypeError):
            calibration.bounds[1] = 9.0  # type: ignore[index]
        with pytest.raises((AttributeError, TypeError)):
            calibration.samples = 5  # type: ignore[misc]

    def test_missing_node_raises(self):
        calibration = FrozenCalibration(bounds={1: 2.0})
        with pytest.raises(QuantizationError) as exc:
            calibration.bound(42)
        assert "42" in str(exc.value)

    def test_zero_bound_defends_against_dead_tensors(self):
        # An all-zero calibration activation must not produce scale 0.
        calibration = FrozenCalibration(bounds={1: 0.0})
        assert calibration.bound(1) == 1.0
        assert calibration.params(1).scale > 0.0

    def test_empty_sample_set_rejected(self):
        graph = small_cnn()
        with pytest.raises(QuantizationError):
            calibrate_graph(graph, ReferenceExecutor(graph), [])

    def test_bounds_take_max_over_samples(self):
        b = GraphBuilder("identity")
        b.input((4,), name="x")
        graph = b.build()
        feeds = [
            {"x": np.array([1.0, -2.0, 0.5, 0.0])},
            {"x": np.array([0.1, -7.0, 0.5, 0.0])},
        ]
        calibration = calibrate_graph(graph, ReferenceExecutor(graph), feeds)
        (input_node,) = list(graph)
        assert calibration.bound(input_node.node_id) == 7.0
        assert calibration.samples == 2


class TestCalibrationIsFrozen:
    def test_run_after_calibrate_never_runs_the_float_model(
        self, monkeypatch
    ):
        compiled = compile_model(small_cnn())
        executor = QuantizedExecutor(compiled)
        node_count = len(list(compiled.graph))
        feeds = example_feeds(compiled.graph, count=3)

        counter = _count_reference_evals(monkeypatch, executor)
        executor.calibrate([feeds[0]])
        calibration_calls = counter["calls"]
        # Calibration IS the float pass: one `_eval` per node per sample.
        assert calibration_calls == node_count

        counter["calls"] = 0
        executor.run(feeds[1])
        first_run = counter["calls"]
        counter["calls"] = 0
        executor.run(feeds[2])
        second_run = counter["calls"]

        # Post-freeze runs only touch the reference for the handful of
        # float-fallback ops (pool, reshape, softmax...) — strictly
        # fewer than a full float pass, and identical between requests.
        assert first_run == second_run
        assert first_run < node_count

    def test_first_run_auto_calibrates_then_freezes(self, monkeypatch):
        compiled = compile_model(small_cnn())
        executor = QuantizedExecutor(compiled)
        feeds = example_feeds(compiled.graph, count=2)
        counter = _count_reference_evals(monkeypatch, executor)

        assert executor.calibration is None
        executor.run(feeds[0])
        frozen = executor.calibration
        assert isinstance(frozen, FrozenCalibration)
        auto_calls = counter["calls"]

        counter["calls"] = 0
        executor.run(feeds[1])
        # Second run reuses the frozen ranges: no second full pass.
        assert counter["calls"] < auto_calls
        assert executor.calibration is frozen

    def test_frozen_ranges_shared_across_executors(self):
        compiled = compile_model(small_cnn())
        donor = QuantizedExecutor(compiled)
        feeds = example_feeds(compiled.graph, count=2)
        calibration = donor.calibrate([feeds[0]])

        sharer = QuantizedExecutor(compiled, calibration=calibration)
        out_a = donor.run(feeds[1])
        out_b = sharer.run(feeds[1])
        for name in out_a:
            np.testing.assert_array_equal(out_a[name], out_b[name])


class TestAddSubUnderflowGuard:
    def _mask_add_graph(self):
        b = GraphBuilder("masked")
        logits = b.input((1, 8), name="logits")
        mask = b.input((1, 8), name="mask")
        b.add(logits, mask, name="sum")
        return b.build()

    def test_dominated_operand_contributes_zero_not_error(self):
        # Attention-mask shape of trouble: one operand's frozen bound
        # dwarfs the other's by ~1e16, making the small operand's
        # rescale ratio unencodable.  The runtime must treat its
        # contribution as exactly zero, not crash.
        compiled = compile_model(self._mask_add_graph())
        executor = QuantizedExecutor(compiled)
        logits = np.linspace(-1.0, 1.0, 8).reshape(1, 8)
        mask = np.full((1, 8), -1e16)
        executor.calibrate([{"logits": logits, "mask": mask}])

        out = executor.run({"logits": logits, "mask": mask})["sum"]
        # Output tracks the dominant operand within one quantization
        # step of the (huge) combined output scale.
        out_scale = (1.0 + 1e16) / 127.0
        assert np.all(np.abs(out - mask) <= out_scale)

    def test_balanced_operands_still_add(self):
        compiled = compile_model(self._mask_add_graph())
        executor = QuantizedExecutor(compiled)
        a = np.linspace(-1.0, 1.0, 8).reshape(1, 8)
        b = np.linspace(1.0, -1.0, 8).reshape(1, 8)
        executor.calibrate([{"logits": a, "mask": b}])
        out = executor.run({"logits": a, "mask": b})["sum"]
        assert np.abs(out - (a + b)).max() < 0.1
