"""Tests for the report generator and harness utilities."""

import pytest

from repro import harness
from repro.analysis.report import PAPER_NOTES, _markdown_table, build_report
from repro.compiler import CompilerOptions


class TestMarkdownTable:
    def test_renders_headers_and_rows(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
        text = _markdown_table(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.50 |" in lines
        assert "| 3 | - |" in lines

    def test_empty_rows(self):
        assert "no rows" in _markdown_table([])


class TestReport:
    def test_report_from_precomputed_experiments(self):
        experiments = {"Table II": harness.table2()}
        text = build_report(experiments)
        assert "# EXPERIMENTS" in text
        assert "## Table II" in text
        assert "vrmpy" in text
        assert "Known deviations" in text

    def test_paper_notes_cover_all_experiments(self):
        expected = {
            "Table I", "Table II", "Table III", "Table IV", "Table V",
            "Figure 7", "Figure 8", "Figure 9", "Figure 10",
            "Figure 11", "Figure 12a", "Figure 12b", "Figure 13",
        }
        assert expected == set(PAPER_NOTES)


class TestHarnessUtilities:
    def test_print_rows_alignment(self, capsys):
        harness.print_rows(
            "Demo", [{"x": 1.0, "label": "abc"}, {"x": 22.5, "label": None}]
        )
        out = capsys.readouterr().out
        assert "== Demo ==" in out
        assert "22.50" in out
        assert "-" in out

    def test_print_rows_empty(self, capsys):
        harness.print_rows("Nothing", [])
        assert "no rows" in capsys.readouterr().out

    def test_fmt(self):
        assert harness._fmt(None) == "-"
        assert harness._fmt(1.234) == "1.23"
        assert harness._fmt("x") == "x"

    def test_compile_cached_identity(self):
        a = harness.compile_cached("wdsr_b")
        b = harness.compile_cached("wdsr_b")
        assert a is b

    def test_compile_cached_distinguishes_options(self):
        a = harness.compile_cached("wdsr_b")
        b = harness.compile_cached(
            "wdsr_b", CompilerOptions(packing="soft_to_hard")
        )
        assert a is not b

    def test_gcd2_latency_includes_dispatch(self):
        compiled = harness.compile_cached("wdsr_b")
        latency = harness.gcd2_latency_ms("wdsr_b")
        assert latency > compiled.latency_ms


class TestBenchInferRows:
    @pytest.mark.slow
    def test_rows_carry_machine_name_and_schema(self):
        from repro.cache.fingerprint import schema_hash
        from repro.compiler import CompilerOptions

        rows = harness.bench_infer_model(
            "mobilenet_v3",
            requests=1,
            workers=1,
            options=CompilerOptions(machine="narrow64"),
        )
        assert rows
        for row in rows:
            assert row["machine"] == "narrow64"
            assert row["machine_schema"] == (
                schema_hash("narrow64")[:16]
            )


class TestAbsoluteLatencyBand:
    """Modelled latencies land within ~3x of the paper's milliseconds
    (the simulator is not the authors' testbed, but it should not be
    an order of magnitude off either)."""

    @pytest.mark.parametrize(
        "name",
        ["mobilenet_v3", "resnet50", "wdsr_b", "fst", "cyclegan", "pixor"],
    )
    def test_within_band(self, name):
        from repro.models import MODELS

        measured = harness.gcd2_latency_ms(name)
        paper = MODELS[name].gcd2_ms
        assert paper / 3 <= measured <= paper * 3, (
            f"{name}: {measured:.1f} ms vs paper {paper} ms"
        )
