"""The chaos harness itself: every scenario in the matrix must hold.

``repro.serve.chaos`` is the executable contract for the degradation
ladder — each scenario injects one service-level fault and asserts the
response is either correct or a structured error with the downgrade
recorded. This test runs the full matrix in-process so CI fails the
moment any rung of the ladder regresses.
"""

import pytest

from repro.serve.chaos import SCENARIOS, build_chaos_graph, run_chaos

EXPECTED_SCENARIOS = {
    "worker_crash_mid_compile",
    "corrupt_disk_cache_entry",
    "corrupt_tune_db",
    "slow_compile_deadline",
    "queue_overflow",
    "engine_exception_mid_batch",
}


class TestMatrix:
    def test_scenario_registry_is_complete(self):
        assert set(SCENARIOS) == EXPECTED_SCENARIOS

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown"):
            run_chaos(names=["not_a_fault"], workdir=str(tmp_path))

    def test_full_matrix_passes(self, tmp_path):
        results = run_chaos(workdir=str(tmp_path))
        assert len(results) == len(EXPECTED_SCENARIOS)
        failures = [r for r in results if not r.ok]
        assert not failures, "\n".join(
            f"{r.fault}: {r.outcome} {r.violations}" for r in failures
        )
        # Every scenario resolved to one of the two allowed outcomes:
        # a correct response or a structured, recorded error — never a
        # hang (the harness would have raised) or a wrong result.
        for result in results:
            assert result.outcome in (
                "correct-response",
                "structured-error",
            )
            assert result.seconds < 120.0
            payload = result.to_payload()
            assert payload["fault"] == result.fault
            assert payload["ok"] is True


class TestChaosGraph:
    def test_graph_compiles_small_and_fast(self):
        graph = build_chaos_graph()
        graph.validate()
        # Keep the harness fast: the whole point of a purpose-built
        # graph is that six scenarios finish in seconds, not minutes.
        assert len(graph.nodes()) < 16
