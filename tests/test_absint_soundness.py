"""Soundness fuzzing: observed runtime values ⊆ static intervals.

The value-range analysis promises that, for any feed inside the
calibration envelope, every tensor the quantized executor materialises
lies inside the statically computed interval.  These tests fuzz that
claim end to end: random calibration feeds, random request feeds
(clipped into the input nodes' frozen bounds — the analysis' input
contract), exact containment per node on the *compiled* graph.
"""

import numpy as np
import pytest

from repro.absint.ranges import ValueRangeAnalysis
from repro.compiler import compile_model
from repro.graph import ops
from repro.graph.execute import ReferenceExecutor
from repro.harness import example_feeds
from repro.models import build_model
from repro.runtime import QuantizedExecutor
from repro.runtime.calibration import calibrate_graph
from tests.conftest import chain_graph, random_dag, small_cnn

#: Containment slack: interval endpoints and kernel outputs may round
#: in different directions on the last ulp of a chained float compute.
REL_SLACK = 1e-7


def _clipped_feeds(graph, calibration, count, seed):
    """Request feeds folded into each input's calibration envelope."""
    feeds_list = example_feeds(graph, count=count, seed=seed)
    inputs = {
        node.name: node.node_id
        for node in graph
        if isinstance(node.op, ops.Input)
    }
    clipped = []
    for feeds in feeds_list:
        sample = {}
        for name, value in feeds.items():
            bound = calibration.bound(inputs[name])
            sample[name] = np.clip(value, -bound, bound)
        clipped.append(sample)
    return clipped


def _assert_contained(compiled, *, calib_seed, run_seed, requests=2):
    graph = compiled.graph
    reference = ReferenceExecutor(graph, seed=0)
    sample_feeds = example_feeds(graph, count=2, seed=calib_seed)
    calibration = calibrate_graph(graph, reference, sample_feeds)

    from repro.lint.diagnostics import Severity

    analysis = ValueRangeAnalysis(compiled, calibration).run()
    assert not any(
        d.severity is Severity.ERROR for d in analysis.diagnostics
    )

    executor = QuantizedExecutor(
        compiled, seed=0, calibration=calibration, kernel_mac_limit=0
    )
    for feeds in _clipped_feeds(graph, calibration, requests, run_seed):
        values = {}
        for node in graph:
            inputs = [values[i] for i in node.inputs]
            values[node.node_id] = executor._eval(node, inputs, feeds)
        for node in graph:
            interval = analysis.intervals[node.node_id]
            observed = np.asarray(values[node.node_id], dtype=np.float64)
            slack = REL_SLACK * max(
                1.0,
                abs(interval.lo)
                if np.isfinite(interval.lo)
                else 0.0,
                abs(interval.hi)
                if np.isfinite(interval.hi)
                else 0.0,
            )
            lo = float(observed.min())
            hi = float(observed.max())
            assert interval.contains(lo, slack=slack) and (
                interval.contains(hi, slack=slack)
            ), (
                f"{node.name} ({node.op.op_type}): observed "
                f"[{lo}, {hi}] escapes static {interval}"
            )


class TestSyntheticGraphs:
    @pytest.mark.parametrize("calib_seed,run_seed", [(11, 21), (12, 22)])
    def test_small_cnn(self, calib_seed, run_seed):
        compiled = compile_model(small_cnn())
        _assert_contained(
            compiled, calib_seed=calib_seed, run_seed=run_seed
        )

    def test_chain(self):
        compiled = compile_model(chain_graph(length=6))
        _assert_contained(compiled, calib_seed=31, run_seed=41)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags(self, seed):
        compiled = compile_model(random_dag(seed))
        _assert_contained(
            compiled, calib_seed=50 + seed, run_seed=70 + seed
        )


class TestZooModels:
    """End-to-end containment on real (cheap) zoo models."""

    @pytest.mark.parametrize("name", ["mobilenet_v3", "tinybert"])
    def test_zoo_containment(self, name):
        from repro.compiler import CompilerOptions, GCD2Compiler

        compiled = GCD2Compiler(CompilerOptions()).compile(
            build_model(name)
        )
        _assert_contained(
            compiled, calib_seed=99, run_seed=7, requests=1
        )
