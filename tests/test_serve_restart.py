"""Crash-safe warm start: kill -9 the server, restart, bit-identical.

The strongest robustness claim in the serving layer is that an unclean
death (SIGKILL — no atexit hooks, no flush) loses nothing: the compile
manifest and the two-tier schedule cache are written atomically, so a
fresh process replays the manifest, recompiles entirely through the
disk cache (zero misses), and serves byte-for-byte identical outputs.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.graph.serialization import save_graph
from repro.serve.chaos import build_chaos_graph

SERVER_SCRIPT = """
import json, os, sys, time
from repro.serve import ServeConfig, ServeServer

cache_dir, graph_path = sys.argv[1], sys.argv[2]
config = ServeConfig(
    cache_dir=cache_dir, graph_root=os.path.dirname(graph_path)
)
server = ServeServer(config).start(warm=True)
svc = server.service
if svc.registry.maybe("m1") is None:
    entry, job = svc.register("m1", source=graph_path)
    assert job.wait(timeout=120) and job.ok, job.error
print(json.dumps({
    "port": server.port,
    "warm_start": svc.diagnostics.warm_start,
}), flush=True)
while True:
    time.sleep(1)
"""


def _launch(tmp_path, cache_dir, graph_path):
    script = tmp_path / "server_script.py"
    script.write_text(SERVER_SCRIPT)
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(script), cache_dir, graph_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(
            f"server died before ready: {proc.stderr.read()}"
        )
    return proc, json.loads(line)


def _infer(port, batch=2, seed=7):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/models/m1/infer",
        data=json.dumps({"batch": batch, "seed": seed}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


@pytest.mark.slow
def test_sigkill_then_warm_restart_is_bit_identical(tmp_path):
    graph_path = str(tmp_path / "chaos_cnn.json")
    save_graph(build_chaos_graph(), graph_path)
    cache_dir = str(tmp_path / "cache")

    proc, ready = _launch(tmp_path, cache_dir, graph_path)
    try:
        assert ready["warm_start"]["manifest_models"] == 0
        baseline = _infer(ready["port"])
        assert baseline["mode"] == "batched"
    finally:
        # The crash under test: no shutdown handler runs.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

    proc2, ready2 = _launch(tmp_path, cache_dir, graph_path)
    try:
        warm = ready2["warm_start"]
        assert warm["manifest_models"] == 1
        assert warm["restored"] == 1
        # Zero recompiles: the warm start is served from the disk
        # cache alone — a miss here means the crash lost state.
        assert warm["cache_misses"] == 0
        assert warm["cache_hits"] > 0
        after = _infer(ready2["port"])
        assert after["outputs"] == baseline["outputs"]
    finally:
        proc2.kill()
        proc2.wait(timeout=30)
