"""CLI error paths: structured one-line failures, never a traceback."""

import json

import pytest

from repro.cli import main
from repro.graph.serialization import FORMAT_VERSION, save_graph
from tests.conftest import small_cnn


def _no_traceback(captured) -> bool:
    return "Traceback" not in captured.err and "Traceback" not in captured.out


class TestCompileErrors:
    def test_unknown_model_exits_one_with_message(self, capsys):
        assert main(["compile", "alexnet"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: GraphError")
        assert "alexnet" in captured.err
        assert _no_traceback(captured)

    def test_missing_graph_file_exits_one(self, capsys):
        assert main(["compile", "/no/such/model.json"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert _no_traceback(captured)

    def test_corrupted_json_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        assert main(["compile", str(path)]) == 1
        captured = capsys.readouterr()
        assert "GraphError" in captured.err
        assert _no_traceback(captured)

    def test_dangling_edge_in_graph_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "dangling.json"
        path.write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "name": "bad",
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {"name": "r", "op": {"type": "ReLU"}, "inputs": [7]},
            ],
        }))
        assert main(["compile", str(path)]) == 1
        captured = capsys.readouterr()
        assert "GraphError" in captured.err
        assert "7" in captured.err
        assert _no_traceback(captured)

    def test_compile_accepts_exported_graph_file(self, tmp_path, capsys):
        path = tmp_path / "cnn.json"
        save_graph(small_cnn(), path)
        assert main(["compile", str(path)]) == 0
        assert "latency:" in capsys.readouterr().out


class TestExperimentErrors:
    def test_unknown_experiment_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "table99"])
        assert excinfo.value.code == 2
        assert _no_traceback(capsys.readouterr())


class TestExportErrors:
    def test_unwritable_export_path_exits_one(self, capsys):
        assert main(
            ["export", "wdsr_b", "/no/such/directory/out.json"]
        ) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert _no_traceback(captured)


class TestVerifyCommand:
    def test_verify_small_graph_file(self, tmp_path, capsys):
        path = tmp_path / "cnn.json"
        save_graph(small_cnn(), path)
        assert main(["verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compiled clean under strict verification" in out
        assert "fallbacks: none" in out
        assert "max quantization error" in out

    def test_verify_unknown_model_exits_one(self, capsys):
        assert main(["verify", "vgg19"]) == 1
        captured = capsys.readouterr()
        assert "GraphError" in captured.err
        assert _no_traceback(captured)

    def test_verify_corrupted_graph_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {"name": "x", "op": {"type": "ReLU"}, "inputs": [0]},
            ],
        }))
        assert main(["verify", str(path)]) == 1
        captured = capsys.readouterr()
        assert "GraphError" in captured.err
        assert "duplicate" in captured.err
        assert _no_traceback(captured)
