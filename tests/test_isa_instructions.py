"""Unit tests for the instruction definitions."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    Instruction,
    Opcode,
    ResourceClass,
    SPEC_TABLE,
    VECTOR_BYTES,
    VECTOR_LANES,
    spec_for,
    vector_instruction,
)


class TestSpecTable:
    def test_every_opcode_has_a_spec(self):
        for opcode in Opcode:
            assert opcode in SPEC_TABLE
            assert spec_for(opcode).opcode is opcode

    def test_vector_width_is_1024_bits(self):
        assert VECTOR_BYTES == 128
        assert VECTOR_LANES == 128

    def test_multiplies_occupy_the_vmult_resource(self):
        for opcode in (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY,
                       Opcode.VTMPY, Opcode.VMPYE):
            assert spec_for(opcode).resource is ResourceClass.VMULT

    def test_multiplies_have_mac_throughput(self):
        assert spec_for(Opcode.VMPY).macs == 128
        assert spec_for(Opcode.VMPA).macs == 256
        assert spec_for(Opcode.VRMPY).macs == 128

    def test_non_multiplies_have_no_macs(self):
        assert spec_for(Opcode.VADD).macs == 0
        assert spec_for(Opcode.VLOAD).macs == 0

    def test_three_stage_pipeline_latencies(self):
        # Footnote 4: vector instructions pass the full 3-stage pipeline.
        for opcode in (Opcode.VMPY, Opcode.VADD, Opcode.VLOAD,
                       Opcode.VSHUFF, Opcode.VASR):
            assert spec_for(opcode).latency == 3

    def test_stores_skip_write_back(self):
        assert spec_for(Opcode.VSTORE).latency < spec_for(Opcode.VLOAD).latency

    def test_load_store_flags(self):
        assert spec_for(Opcode.VLOAD).is_load
        assert spec_for(Opcode.VSTORE).is_store
        assert spec_for(Opcode.LOAD).is_load
        assert spec_for(Opcode.STORE).is_store
        assert not spec_for(Opcode.VADD).is_load
        assert not spec_for(Opcode.VADD).is_store

    def test_shift_has_dedicated_resource(self):
        assert spec_for(Opcode.VASR).resource is ResourceClass.VSHIFT

    def test_permute_has_dedicated_resource(self):
        assert spec_for(Opcode.VSHUFF).resource is ResourceClass.VPERMUTE


class TestInstruction:
    def test_unique_uids(self):
        a = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"))
        b = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"))
        assert a.uid != b.uid

    def test_identity_hashing(self):
        a = Instruction(Opcode.NOP)
        b = Instruction(Opcode.NOP)
        assert len({a, b}) == 2
        assert a in {a}

    def test_reads_and_writes(self):
        inst = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"))
        assert inst.writes("v0")
        assert inst.reads("v1") and inst.reads("v2")
        assert not inst.reads("v0")
        assert not inst.writes("v1")

    def test_operand_tuples_normalized(self):
        inst = Instruction(Opcode.VADD, dests=["v0"], srcs=["v1"])
        assert inst.dests == ("v0",)
        assert inst.srcs == ("v1",)

    def test_latency_and_resource_shortcuts(self):
        inst = Instruction(Opcode.VMPY, dests=("v0", "v1"), srcs=("v2",))
        assert inst.latency == 3
        assert inst.resource is ResourceClass.VMULT

    def test_default_lane_bytes(self):
        assert Instruction(Opcode.VADD).lane_bytes == 1


class TestVectorInstruction:
    def test_vector_side(self):
        assert vector_instruction(Opcode.VMPY)
        assert vector_instruction(Opcode.VLOAD)
        assert vector_instruction(Opcode.VSHUFF)

    def test_scalar_side(self):
        assert not vector_instruction(Opcode.ADD)
        assert not vector_instruction(Opcode.LOAD)
        assert not vector_instruction(Opcode.JUMP)


class TestImplicitOperands:
    """Accumulate-in-place forms read their destination (regression:
    ``reads``/``read_registers`` used to report explicit srcs only)."""

    def test_accumulate_dest_is_read_and_written(self):
        # vrmpy acc, vin — accumulates into acc even when the emitter
        # does not list acc among the explicit sources.
        inst = Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        assert inst.writes("v_acc")
        assert inst.reads("v_acc")
        assert "v_acc" in inst.read_registers

    def test_explicit_accumulator_not_duplicated(self):
        # The compiler's emitters list acc explicitly; the implicit
        # operand must not appear twice.
        inst = Instruction(
            Opcode.VRMPY, dests=("v_acc",), srcs=("v_in", "v_acc")
        )
        assert inst.read_registers == ("v_in", "v_acc")

    def test_vtmpy_accumulates_too(self):
        inst = Instruction(Opcode.VTMPY, dests=("v_acc",), srcs=("v_in",))
        assert inst.reads("v_acc")

    def test_non_accumulating_ops_do_not_read_dest(self):
        for opcode in (Opcode.VMPY, Opcode.VADD, Opcode.VLOAD):
            inst = Instruction(opcode, dests=("v0",), srcs=("v1",))
            assert not inst.reads("v0")
            assert inst.read_registers == ("v1",)

    def test_written_registers_matches_dests(self):
        inst = Instruction(Opcode.VSHUFF, dests=("v0", "v1"), srcs=("v2",))
        assert inst.written_registers == ("v0", "v1")
