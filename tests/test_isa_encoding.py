"""Tests for the binary instruction/packet encoding."""

import pytest

from repro.codegen.elementwise import emit_elementwise_body
from repro.codegen.matmul import emit_matmul_body
from repro.core.packing.sda import pack_best
from repro.errors import IsaError
from repro.isa.encoding import (
    CODE_TO_OPCODE,
    OPCODE_TO_CODE,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet


def _roundtrip(packets):
    blob, names = encode_program(packets)
    return decode_program(blob, names)


class TestOpcodeTable:
    def test_bijective(self):
        assert len(OPCODE_TO_CODE) == len(CODE_TO_OPCODE) == len(Opcode)
        for opcode, code in OPCODE_TO_CODE.items():
            assert CODE_TO_OPCODE[code] is opcode

    def test_fits_in_six_bits(self):
        assert max(OPCODE_TO_CODE.values()) < 64


class TestRoundtrip:
    @pytest.mark.parametrize(
        "body_factory",
        [
            lambda: emit_matmul_body(Opcode.VRMPY, 2, 2, include_epilogue=True),
            lambda: emit_matmul_body(Opcode.VMPA, 1, 2, include_epilogue=True),
            lambda: emit_elementwise_body("Add", 3, unroll=2),
        ],
    )
    def test_kernel_bodies_roundtrip(self, body_factory):
        body = body_factory()
        packets = pack_best(body)
        decoded = _roundtrip(packets)
        assert len(decoded) == len(packets)
        for original, restored in zip(packets, decoded):
            assert len(restored) == len(original)
            for a, b in zip(original, restored):
                assert a.opcode is b.opcode
                assert a.dests == b.dests
                assert a.srcs == b.srcs
                assert a.lane_bytes == b.lane_bytes
                assert tuple(i & 0xFFFFFFFF for i in a.imms) == b.imms

    def test_packet_boundaries_preserved(self):
        packets = [
            Packet([Instruction(Opcode.NOP), Instruction(Opcode.JUMP)]),
            Packet([Instruction(Opcode.NOP)]),
        ]
        decoded = _roundtrip(packets)
        assert [len(p) for p in decoded] == [2, 1]

    def test_lane_bytes_roundtrip(self):
        packets = [
            Packet([
                Instruction(
                    Opcode.VADD, dests=("v0",), srcs=("v1", "v2"),
                    lane_bytes=4,
                )
            ])
        ]
        (decoded,) = _roundtrip(packets)
        assert decoded[0].lane_bytes == 4


class TestErrors:
    def test_empty_packet_rejected(self):
        with pytest.raises(IsaError):
            encode_program([Packet([])])

    def test_too_many_operands_rejected(self):
        inst = Instruction(
            Opcode.VADD,
            dests=("a", "b", "c", "d"),
            srcs=("e", "f", "g"),
        )
        with pytest.raises(IsaError):
            encode_instruction(inst, {}, more_in_packet=False)

    def test_unencodable_lane_width_rejected(self):
        inst = Instruction(Opcode.VADD, dests=("a",), srcs=("b", "c"))
        inst.lane_bytes = 3
        with pytest.raises(IsaError):
            encode_instruction(inst, {}, more_in_packet=False)

    def test_truncated_blob_rejected(self):
        packets = [Packet([Instruction(Opcode.NOP)])]
        blob, names = encode_program(packets)
        # Flip the parse bit so the packet never terminates.
        corrupted = bytes([blob[0] | 1]) + blob[1:]
        with pytest.raises(IsaError):
            decode_program(corrupted, names)
