"""End-to-end tests for ``repro lint`` (CLI surface + baselines)."""

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_clean_model_exits_zero(self, capsys):
        assert main(["lint", "fst"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out

    def test_fail_on_info_trips_on_informational_findings(self, capsys):
        # The zoo is clean at warning level but carries DF003-style
        # informational notes, so tightening the gate to `info` fails.
        assert main(["lint", "fst", "--fail-on", "info"]) == 1
        err = capsys.readouterr().err
        assert "failing" in err

    def test_json_format_parses(self, capsys):
        assert main(["lint", "fst", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "diagnostics" in payload
        assert "metrics" in payload

    def test_unknown_model_exits_one(self, capsys):
        assert main(["lint", "no_such_model"]) == 1
        assert capsys.readouterr().err

    def test_packing_option_accepted(self):
        assert main(["lint", "fst", "--packing", "soft_to_hard"]) == 0


class TestBaselines:
    def test_write_then_suppress_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        assert (
            main(["lint", "fst", "--write-baseline", str(baseline)]) == 0
        )
        assert baseline.exists()
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1

        # With every current finding suppressed, even the strictest
        # gate passes.
        capsys.readouterr()
        assert (
            main(
                [
                    "lint",
                    "fst",
                    "--baseline",
                    str(baseline),
                    "--fail-on",
                    "info",
                ]
            )
            == 0
        )

    def test_malformed_baseline_exits_one(self, tmp_path, capsys):
        baseline = tmp_path / "bad.json"
        baseline.write_text('{"version": 99}')
        assert main(["lint", "fst", "--baseline", str(baseline)]) == 1
        assert capsys.readouterr().err
