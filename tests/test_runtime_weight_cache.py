"""Hot-path caching regressions: weight levels and tensor liveness.

Two bugs the codegen work flushed out of the interpreter: weight int8
levels were re-quantized on every GEMM call, and every engine re-ran
the liveness pass over the same immutable graph.  These tests pin the
fixes — one weight quantization per (executor, node) lifetime, one
liveness pass per compiled model.
"""

import repro.absint.liveness as liveness_mod
from repro.compiler import compile_model
from repro.harness import example_feeds
from repro.runtime import InferenceEngine, QuantizedExecutor
from repro.runtime.executor import QuantizedExecutor as ExecutorClass
from repro.serve.pool import EnginePool
from tests.conftest import small_cnn


def _prepared(requests=3):
    compiled = compile_model(small_cnn())
    executor = QuantizedExecutor(compiled, seed=0, kernel_mac_limit=0)
    calibration = executor.calibrate(
        example_feeds(compiled.graph, count=2, seed=99)
    )
    feeds = example_feeds(compiled.graph, count=requests, seed=7)
    return compiled, calibration, feeds


def _spy_weight_computations(monkeypatch):
    """Record (executor-id, node-id) for every *computed* weight level.

    A cache hit never lands here, so duplicates mean the weight was
    re-quantized inside one executor's lifetime — the exact regression
    this file exists to catch.
    """
    computed = []
    original = ExecutorClass._levels_for_weight

    def spy(self, node, b_params, b_float):
        hit = node.node_id in self._weight_levels
        out = original(self, node, b_params, b_float)
        if not hit:
            computed.append((id(self), node.node_id))
        return out

    monkeypatch.setattr(ExecutorClass, "_levels_for_weight", spy)
    return computed


class TestWeightLevelCache:
    def test_one_quantization_per_weight_per_executor(self, monkeypatch):
        computed = _spy_weight_computations(monkeypatch)
        compiled, calibration, feeds = _prepared()
        executor = QuantizedExecutor(
            compiled, seed=0, kernel_mac_limit=0, calibration=calibration
        )
        for feed in feeds * 3:
            executor.run(feed)
        assert computed, "expected at least one weight-bearing GEMM"
        assert len(computed) == len(set(computed)), (
            "a weight was re-quantized within one executor lifetime: "
            f"{computed}"
        )

    def test_engine_batches_never_requantize_weights(self, monkeypatch):
        computed = _spy_weight_computations(monkeypatch)
        compiled, calibration, feeds = _prepared(requests=4)
        engine = InferenceEngine(
            compiled,
            calibration,
            seed=0,
            kernel_mac_limit=0,
            arena=True,
            codegen=False,
        )
        try:
            for _ in range(3):
                engine.run_batch(feeds)
            assert computed
            assert len(computed) == len(set(computed))
        finally:
            engine.close()

    def test_codegen_emission_reuses_interpreter_cache(self, monkeypatch):
        # Emission hoists weight levels to constants through the same
        # per-executor cache, so emit + serve still computes each
        # weight's levels at most once per executor.
        computed = _spy_weight_computations(monkeypatch)
        compiled, calibration, feeds = _prepared(requests=4)
        engine = InferenceEngine(
            compiled,
            calibration,
            seed=0,
            kernel_mac_limit=0,
            arena=True,
            codegen=True,
        )
        try:
            for _ in range(3):
                engine.run_batch(feeds)
            assert engine._codegen_error is None
            assert len(computed) == len(set(computed))
        finally:
            engine.close()


class TestLivenessSharing:
    def test_pool_engines_share_one_liveness_pass(self, monkeypatch):
        compiled, calibration, feeds = _prepared()
        calls = {"count": 0}
        original = liveness_mod.tensor_liveness

        def counting(graph):
            calls["count"] += 1
            return original(graph)

        # Patch *after* compile: the compile-time analysis passes are
        # allowed their own liveness runs; serving is not.
        monkeypatch.setattr(liveness_mod, "tensor_liveness", counting)
        pool = EnginePool(
            compiled,
            size=3,
            calibration_feeds=example_feeds(
                compiled.graph, count=2, seed=99
            ),
            codegen=True,
        )
        try:
            assert calls["count"] <= 1, (
                "pool engines must share the CompiledModel's cached "
                f"liveness, saw {calls['count']} passes"
            )
            response = pool.infer(feeds)
            assert response["mode"] == "batched"
            assert calls["count"] <= 1
            shared = {id(e._liveness) for e in pool.engines()}
            assert len(shared) == 1, (
                "pool engines hold distinct liveness objects"
            )
        finally:
            pool.close()

    def test_compiled_model_caches_liveness_object(self):
        compiled, _, _ = _prepared()
        first = compiled.liveness()
        second = compiled.liveness()
        assert first is second
