"""Unit tests for VLIW packet legality rules."""

import pytest

from repro.errors import PacketError
from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import (
    MAX_PACKET_SLOTS,
    Packet,
    fits_with,
    packet_is_legal,
)


def _vadd(i):
    return Instruction(
        Opcode.VADD, dests=(f"va{i}",), srcs=(f"vb{i}", f"vc{i}")
    )


def _salu(i):
    return Instruction(Opcode.ADD, dests=(f"ra{i}",), srcs=(f"rb{i}",))


class TestSlotLimits:
    def test_at_most_four_instructions(self):
        insts = [_salu(i) for i in range(5)]
        assert packet_is_legal(insts[:4])
        assert not packet_is_legal(insts)

    def test_two_shifts_not_allowed(self):
        # The paper's explicit example of a resource constraint.
        shifts = [
            Instruction(Opcode.VASR, dests=(f"v{i}",), srcs=(f"vs{i}",))
            for i in range(2)
        ]
        assert packet_is_legal(shifts[:1])
        assert not packet_is_legal(shifts)

    def test_two_multiplies_allowed_three_not(self):
        mults = [
            Instruction(Opcode.VRMPY, dests=(f"vm{i}",), srcs=(f"vi{i}",))
            for i in range(3)
        ]
        assert packet_is_legal(mults[:2])
        assert not packet_is_legal(mults)

    def test_single_store_per_packet(self):
        stores = [
            Instruction(Opcode.VSTORE, srcs=(f"v{i}", f"r{i}"))
            for i in range(2)
        ]
        assert packet_is_legal(stores[:1])
        assert not packet_is_legal(stores)

    def test_two_permutes_not_allowed(self):
        shuffs = [
            Instruction(
                Opcode.VSHUFF,
                dests=(f"vl{i}", f"vh{i}"),
                srcs=(f"vi{i}", f"vi{i}"),
            )
            for i in range(2)
        ]
        assert not packet_is_legal(shuffs)


class TestDependencyLegality:
    def test_hard_pair_rejected(self):
        producer = Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        consumer = Instruction(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        assert not packet_is_legal([producer, consumer])

    def test_soft_pair_accepted(self):
        load = Instruction(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        consumer = Instruction(Opcode.VADD, dests=("v2",), srcs=("v1", "v0"))
        assert packet_is_legal([load, consumer])


class TestPacketObject:
    def test_construction_validates(self):
        with pytest.raises(PacketError):
            Packet([_salu(i) for i in range(5)])

    def test_add_validates(self):
        packet = Packet([_vadd(0)])
        with pytest.raises(PacketError):
            packet.add(
                Instruction(Opcode.VADD, dests=("x",), srcs=("va0", "y"))
            )

    def test_can_add_matches_fits_with(self):
        packet = Packet([_vadd(0), _vadd(1)])
        third_valu = _vadd(2)  # VALU limit is 2 per packet
        assert not packet.can_add(third_valu)
        assert not fits_with(third_valu, packet.instructions)
        extra = _salu(2)
        assert packet.can_add(extra) == fits_with(extra, packet.instructions)
        packet.add(extra)
        assert len(packet) == 3
        assert extra in packet

    def test_empty_slots(self):
        packet = Packet([_vadd(0)])
        assert packet.empty_slots == MAX_PACKET_SLOTS - 1

    def test_soft_pairs_reported(self):
        load = Instruction(Opcode.VLOAD, dests=("v1",), srcs=("r_a",))
        consumer = Instruction(
            Opcode.VADD, dests=("v2",), srcs=("v1", "v0")
        )
        packet = Packet([load, consumer])
        pairs = packet.soft_pairs()
        assert (load, consumer) in pairs

    def test_iteration(self):
        members = [_vadd(0), _salu(1)]
        packet = Packet(list(members))
        assert list(packet) == members


class TestFitsWith:
    def test_marginal_slot_check(self):
        packed = [_salu(i) for i in range(4)]
        assert not fits_with(_salu(9), packed)

    def test_marginal_resource_check(self):
        packed = [
            Instruction(Opcode.VRMPY, dests=(f"vm{i}",), srcs=(f"vi{i}",))
            for i in range(2)
        ]
        extra = Instruction(Opcode.VRMPY, dests=("vm9",), srcs=("vi9",))
        assert not fits_with(extra, packed)
        assert fits_with(_salu(0), packed)

    def test_marginal_store_check(self):
        packed = [Instruction(Opcode.VSTORE, srcs=("v0", "r0"))]
        extra = Instruction(Opcode.VSTORE, srcs=("v1", "r1"))
        assert not fits_with(extra, packed)
