"""Integration tests: every table/figure reproduces the paper's shape.

These are the reproduction acceptance tests — for each experiment they
assert the *qualitative* claims (who wins, orderings, crossovers), not
absolute numbers.  Heavier experiments share the harness's compile
cache via module-scoped fixtures.
"""

import pytest

from repro import harness
from repro.isa.instructions import Opcode


@pytest.fixture(scope="module")
def table4_rows():
    return harness.table4()


@pytest.fixture(scope="module")
def figure9_rows():
    return harness.figure9()


class TestTable1:
    def test_dsp_beats_gpu_beats_cpu(self):
        for row in harness.table1():
            assert row["dsp_ms"] < row["gpu_ms"] < row["cpu_ms"], row

    def test_dsp_draws_least_power(self):
        for row in harness.table1():
            assert row["cpu_power_x"] > row["gpu_power_x"] > 1.0


class TestTable2:
    def test_winners_match_paper(self):
        expected = {32: "vrmpy", 64: "vmpa", 96: "vrmpy", 128: "vmpy"}
        for row in harness.table2():
            assert row["winner"] == expected[row["M=K=N"]]

    def test_latency_ratios_close_to_paper(self):
        paper = harness.TABLE2_PAPER_LATENCY
        for row in harness.table2():
            _, vmpa, vrmpy = paper[row["M=K=N"]]
            assert row["lat_vmpa"] == pytest.approx(vmpa, abs=0.12)
            assert row["lat_vrmpy"] == pytest.approx(vrmpy, abs=0.12)

    def test_data_sizes_match_paper_exactly(self):
        expected = {
            32: (0.56, 0.33),
            64: (0.60, 0.60),
            96: (1.00, 0.82),
            128: (1.00, 1.00),
        }
        for row in harness.table2():
            vmpa, vrmpy = expected[row["M=K=N"]]
            assert row["data_vmpa"] == pytest.approx(vmpa, abs=0.01)
            assert row["data_vrmpy"] == pytest.approx(vrmpy, abs=0.01)


class TestTable3:
    def test_gcd2_beats_rake_on_every_kernel(self):
        for row in harness.table3():
            assert row["speedup"] > 1.5, row

    def test_rake_selections_reproduced(self):
        for row in harness.table3():
            assert row["rake_instr"] == row["paper_rake"], row


class TestTable4:
    def test_gcd2_wins_every_supported_model(self, table4_rows):
        for row in table4_rows:
            if row["model"] == "geomean":
                continue
            if row["over_tflite"] is not None:
                assert row["over_tflite"] > 1.0, row
            if row["over_snpe"] is not None:
                assert row["over_snpe"] > 1.0, row

    def test_geomean_close_to_paper(self, table4_rows):
        geomean = [r for r in table4_rows if r["model"] == "geomean"][0]
        assert geomean["over_tflite"] == pytest.approx(2.8, abs=0.6)
        assert geomean["over_snpe"] == pytest.approx(2.1, abs=0.5)

    def test_snpe_ahead_of_tflite(self, table4_rows):
        for row in table4_rows:
            if row["model"] == "geomean":
                continue
            if row["tflite_ms"] and row["snpe_ms"]:
                assert row["snpe_ms"] < row["tflite_ms"], row

    def test_transformers_only_run_under_gcd2(self, table4_rows):
        by_name = {r["model"]: r for r in table4_rows}
        for name in ("tinybert", "conformer"):
            assert by_name[name]["tflite_ms"] is None
            assert by_name[name]["snpe_ms"] is None
            assert by_name[name]["gcd2_ms"] > 0

    def test_efficientdet_realtime_under_gcd2_only(self, table4_rows):
        row = [r for r in table4_rows if r["model"] == "efficientdet_d0"][0]
        assert row["snpe_ms"] is None
        assert row["gcd2_ms"] < 33.3  # 30 FPS real-time bar
        assert row["tflite_ms"] > 33.3


class TestTable5:
    def test_gcd2_has_best_energy_efficiency(self):
        rows = harness.table5()
        ours = [r for r in rows if r["platform"] == "GCD2 (ours)"][0]
        for row in rows:
            if row is not ours:
                assert ours["fpw"] > row["fpw"], row

    def test_jetson_int8_has_best_fps(self):
        rows = harness.table5()
        best = max(rows, key=lambda r: r["fps"])
        assert best["device"] == "GPU + DLA (int8)"


class TestFigure7:
    def test_gcd2_fastest_gcd_b_second(self):
        for row in harness.figure7():
            assert row["speedup_gcd2"] >= row["speedup_gcd_b"] * 0.999
            for key in ("speedup_tvm", "speedup_rake"):
                assert row["speedup_gcd_b"] > row[key], row

    def test_everyone_beats_halide(self):
        for row in harness.figure7():
            for key in ("speedup_tvm", "speedup_rake", "speedup_gcd2"):
                assert row[key] >= 1.0

    def test_gcd2_packets_never_more_than_halide(self):
        for row in harness.figure7():
            assert row["packets_gcd2"] <= 1.0


class TestFigure8:
    def test_frameworks_below_gcd2(self):
        for row in harness.figure8():
            for key in ("tflite_util_%", "tflite_bw_%"):
                if row[key] is not None:
                    assert row[key] < 100.0, row


class TestFigure9:
    def test_speedups_monotone_nondecreasing(self, figure9_rows):
        for row in figure9_rows:
            assert row["no_opt"] == pytest.approx(1.0)
            assert row["+instr/layout"] >= row["no_opt"] - 1e-9
            assert row["+vliw"] >= row["+instr/layout"] - 1e-9
            assert row["+other"] >= row["+vliw"] - 1e-9

    def test_layout_selection_is_largest_single_gain(self, figure9_rows):
        # Figure 9's observation: instruction/layout selection has the
        # biggest impact of the three optimizations.
        for row in figure9_rows:
            layout_gain = row["+instr/layout"] / row["no_opt"]
            vliw_gain = row["+vliw"] / row["+instr/layout"]
            assert layout_gain > vliw_gain, row

    def test_layout_gain_in_paper_band(self, figure9_rows):
        for row in figure9_rows:
            assert 1.2 <= row["+instr/layout"] <= 3.2, row


class TestFigure10:
    @pytest.fixture(scope="class")
    def rows(self):
        return harness.figure10(sizes=(10, 15))

    def test_global_beats_local_substantially(self, rows):
        for row in rows:
            assert row["speedup_global"] >= 1.2, row

    def test_gcd2_matches_global(self, rows):
        # The headline of Figure 10a: GCD2(13) ~= global optimal.
        for row in rows:
            assert row["speedup_gcd2_13"] == pytest.approx(
                row["speedup_global"], rel=0.03
            )

    def test_raw_search_space_explodes(self, rows):
        options = [row["raw_options"] for row in rows]
        assert options[1] > options[0] * 100


class TestFigure11:
    def test_sda_never_loses(self):
        for row in harness.figure11():
            assert row["vs_soft_to_hard"] >= 0.999, row
            assert row["vs_soft_to_none"] >= 0.999, row


class TestFigure12:
    def test_gcd2_beats_out_and_mid_strategies(self):
        for row in harness.figure12_kernels():
            assert row["gcd2"] >= row["out_only"] - 1e-9, row
            assert row["gcd2"] >= min(row["mid_only"], row["gcd2"]), row

    def test_gcd2_close_to_exhaustive(self):
        # 0.80 tolerance: the SDA first-best tie-break packs the
        # 1024x128x256 kernel's (8,4) unroll into a strictly better
        # schedule, which raises the exhaustive bar over the adaptive
        # heuristic's (8,2) pick for that one shape.
        for row in harness.figure12_kernels():
            assert row["gcd2"] >= row["exhaustive"] * 0.80, row

    def test_oversized_outer_factor_drops(self):
        rows = harness.figure12_single()
        by_factor = {r["factor"]: r for r in rows if r["factor"] != "gcd2=4-4"}
        assert by_factor[16]["out_only"] < by_factor[4]["out_only"]


class TestFigure13:
    def test_gcd2_dsp_best_fpw(self):
        for row in harness.figure13():
            for key in ("tflite_dsp_fpw", "snpe_dsp_fpw", "tflite_gpu_fpw"):
                if row.get(key) is not None:
                    assert row["gcd2_dsp_fpw"] > row[key], row

    def test_gcd2_draws_more_than_other_dsp_solutions(self):
        # "GCD2-DSP consumes more power ... because of its better DSP
        # and memory utilization."
        for row in harness.figure13():
            assert row["gcd2_dsp_W"] >= row["tflite_dsp_W"], row

    def test_gpu_draws_most_power(self):
        for row in harness.figure13():
            assert row["tflite_gpu_W"] > row["gcd2_dsp_W"], row
