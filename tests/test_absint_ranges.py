"""Value-range analysis: QR rule regressions and rescale statics."""

import numpy as np
import pytest

from repro.absint.domain import Interval
from repro.absint.ranges import INT32_MAX, ValueRangeAnalysis
from repro.compiler import compile_model
from repro.errors import QuantizationError
from repro.graph import ops
from repro.harness import example_feeds
from repro.runtime import QuantizedExecutor
from repro.runtime.calibration import FrozenCalibration, calibrate_graph
from repro.runtime.executor import QuantizedExecutor as QX
from repro.runtime.rescale import (
    MULTIPLIER_MAX,
    VANISHING_RATIO,
    RescaleStep,
    addsub_rescale_plan,
    shift_underflows,
)
from tests.conftest import small_cnn


def _calibrated(compiled, seed=0):
    """Frozen calibration measured on the *compiled* graph."""
    from repro.graph.execute import ReferenceExecutor

    reference = ReferenceExecutor(compiled.graph, seed=seed)
    feeds = example_feeds(compiled.graph, count=2, seed=99)
    return calibrate_graph(compiled.graph, reference, feeds)


@pytest.fixture(scope="module")
def compiled_cnn():
    return compile_model(small_cnn())


@pytest.fixture(scope="module")
def cnn_calibration(compiled_cnn):
    return _calibrated(compiled_cnn)


class TestShiftUnderflow:
    """The shared predicate behind the runtime guard and LINT-QR004."""

    def test_truth_table(self):
        assert not shift_underflows(2 ** 14, 0)
        assert not shift_underflows(2 ** 14, 5)
        # 2^14 << 16 = 2^30 still fits the int32 lane.
        assert not shift_underflows(2 ** 14, -16)
        # 2^14 << 17 = 2^31 exceeds it.
        assert shift_underflows(2 ** 14, -17)
        assert not shift_underflows(2 ** 15 - 1, -16)
        assert shift_underflows(MULTIPLIER_MAX, -1)

    def test_runtime_guard_raises_structured_error(self):
        node = small_cnn().output_nodes()[0]
        levels = np.array([1, -2], dtype=np.int64)
        with pytest.raises(QuantizationError) as exc:
            QX._fixed_point_rescale(node, levels, 2 ** 14, -17)
        assert "underflow" in str(exc.value)

    def test_runtime_prescales_small_deficits(self):
        node = small_cnn().output_nodes()[0]
        levels = np.array([3, -1], dtype=np.int64)
        out = QX._fixed_point_rescale(node, levels, 2 ** 14, -2)
        assert np.array_equal(out, levels * (2 ** 14 << 2))

    def test_step_underflow_property(self):
        bad = RescaleStep(0, 1.0, 1.0, 1.0, multiplier=2 ** 14,
                          shift=-17)
        good = RescaleStep(0, 1.0, 1.0, 1.0, multiplier=2 ** 14,
                           shift=12)
        skipped = RescaleStep(0, 1.0, 1.0, 0.0, skipped=True)
        assert bad.underflows
        assert not good.underflows
        assert not skipped.underflows


class TestRescalePlan:
    def test_consistent_bounds_are_encodable(self):
        plan = addsub_rescale_plan(3.0, 5.0)
        assert plan.out_bound == 8.0
        assert len(plan.steps) == 2
        for step in plan.steps:
            assert not step.skipped
            assert not step.underflows
            assert 2 ** 14 <= step.multiplier < 2 ** 15
            # ratio <= 1/4 keeps the effective shift non-negative.
            assert step.shift >= 0

    def test_vanishing_operand_is_skipped(self):
        plan = addsub_rescale_plan(1.0, 1e16)
        tiny, huge = plan.steps
        assert tiny.skipped
        assert tiny.ratio < VANISHING_RATIO
        assert not huge.skipped

    def test_non_finite_bound_raises(self):
        with pytest.raises(QuantizationError):
            addsub_rescale_plan(float("inf"), 1.0)
        with pytest.raises(QuantizationError):
            addsub_rescale_plan(float("nan"), 1.0)


class TestStaticRules:
    """Compile-time QR diagnostics over a compiled graph."""

    def _add_node(self, compiled):
        return next(
            n for n in compiled.graph
            if isinstance(n.op, (ops.Add, ops.Sub))
        )

    def test_clean_calibration_has_no_findings(
        self, compiled_cnn, cnn_calibration
    ):
        analysis = ValueRangeAnalysis(
            compiled_cnn, cnn_calibration
        ).run()
        assert analysis.diagnostics == []
        assert set(analysis.intervals) == {
            n.node_id for n in compiled_cnn.graph
        }
        # Every quantized GEMM carries a discharged QR003 obligation.
        assert analysis.acc_bounds
        assert all(
            bound <= INT32_MAX
            for bound in analysis.acc_bounds.values()
        )

    def test_missing_calibration_reports_qr001(self, compiled_cnn):
        empty = FrozenCalibration(bounds={}, samples=0)
        analysis = ValueRangeAnalysis(compiled_cnn, empty).run()
        rules = {d.rule_id for d in analysis.diagnostics}
        assert rules == {"LINT-QR001"}
        # Unknown operands abstract to top, never crash the pass.
        add = self._add_node(compiled_cnn)
        assert analysis.intervals[add.node_id] == Interval.top()

    def test_infinite_bound_reports_qr002(
        self, compiled_cnn, cnn_calibration
    ):
        add = self._add_node(compiled_cnn)
        bounds = dict(cnn_calibration.bounds)
        bounds[add.inputs[0]] = float("inf")
        analysis = ValueRangeAnalysis(
            compiled_cnn, FrozenCalibration(bounds=bounds, samples=1)
        ).run()
        assert any(
            d.rule_id == "LINT-QR002"
            and d.location.node == add.name
            for d in analysis.diagnostics
        )

    def test_vanishing_operand_reports_qr005(
        self, compiled_cnn, cnn_calibration
    ):
        add = self._add_node(compiled_cnn)
        bounds = dict(cnn_calibration.bounds)
        bounds[add.inputs[0]] = 1.0
        bounds[add.inputs[1]] = 1e16
        analysis = ValueRangeAnalysis(
            compiled_cnn, FrozenCalibration(bounds=bounds, samples=1)
        ).run()
        findings = [
            d for d in analysis.diagnostics
            if d.rule_id == "LINT-QR005"
        ]
        assert findings
        assert findings[0].location.node == add.name

    def test_unencodable_plan_reports_qr004(
        self, compiled_cnn, cnn_calibration, monkeypatch
    ):
        # With a consistent calibration the plan is always encodable
        # (ratio <= 1/4); the QR004 promotion is the wiring that turns
        # the runtime QuantizationError into a compile-time finding,
        # so fail the plan at its seam.
        import repro.absint.ranges as ranges_mod

        def explode(bound_a, bound_b, node=None):
            raise QuantizationError(
                "rescale multiplier not encodable: synthetic",
                stage="runtime",
                node=node,
            )

        monkeypatch.setattr(
            ranges_mod, "addsub_rescale_plan", explode
        )
        analysis = ValueRangeAnalysis(
            compiled_cnn, cnn_calibration
        ).run()
        add = self._add_node(compiled_cnn)
        findings = [
            d for d in analysis.diagnostics
            if d.rule_id == "LINT-QR004"
        ]
        assert findings
        assert findings[0].location.node == add.name
        assert analysis.intervals[add.node_id] == Interval.top()

    def test_accumulator_overflow_reports_qr003(
        self, compiled_cnn, cnn_calibration
    ):
        analysis = ValueRangeAnalysis(compiled_cnn, cnn_calibration)
        node = self._add_node(compiled_cnn)
        analysis._check_accumulator(node, INT32_MAX + 1)
        assert any(
            d.rule_id == "LINT-QR003"
            for d in analysis.diagnostics
        )
        assert analysis.acc_bounds[node.node_id] == INT32_MAX + 1

    def test_shrunk_bound_reports_qr006(
        self, compiled_cnn, cnn_calibration
    ):
        # A consumed tensor whose frozen bound is far below its
        # statically possible values saturates at quantization time.
        add = self._add_node(compiled_cnn)
        bounds = dict(cnn_calibration.bounds)
        bounds[add.inputs[0]] = 1e-9
        analysis = ValueRangeAnalysis(
            compiled_cnn, FrozenCalibration(bounds=bounds, samples=1)
        ).run()
        flagged = {
            d.location.node
            for d in analysis.diagnostics
            if d.rule_id == "LINT-QR006"
        }
        producer = compiled_cnn.graph.node(add.inputs[0])
        assert producer.name in flagged


class TestRuntimeAgreement:
    """The promoted static rules describe what the kernel does."""

    def test_addsub_matches_plan_on_compiled_graph(self):
        # A graph whose single output IS the add node, so the executed
        # value can be compared against the static rescale plan: the
        # kernel's output must be exactly level * out_scale.
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("residual_tail")
        x = b.input((1, 3, 8, 8), name="image")
        a = b.conv2d(x, 4, kernel=3)
        c = b.conv2d(x, 4, kernel=3)
        b.add(a, c)
        compiled = compile_model(b.build())
        calibration = _calibrated(compiled)
        add = next(
            n for n in compiled.graph if isinstance(n.op, ops.Add)
        )
        plan = addsub_rescale_plan(
            calibration.bound(add.inputs[0]),
            calibration.bound(add.inputs[1]),
        )
        executor = QuantizedExecutor(
            compiled, seed=0, calibration=calibration
        )
        feeds = example_feeds(compiled.graph, count=1, seed=5)[0]
        outputs = executor.run(feeds)
        value = outputs[add.name]
        levels = np.round(value / plan.out_scale)
        assert np.allclose(value, levels * plan.out_scale)
        assert levels.min() >= -128 and levels.max() <= 127

        # And the static interval is exactly the addsub transfer's.
        analysis = ValueRangeAnalysis(compiled, calibration).run()
        interval = analysis.intervals[add.node_id]
        assert interval.lo == -128.0 * plan.out_scale
        assert interval.hi == 127.0 * plan.out_scale
        assert all(
            interval.contains(v) for v in np.ravel(value)
        )
