"""Deep structural tests for each model-zoo network.

Beyond MAC totals, these check the architectural landmarks the paper's
workloads depend on: stage resolutions, operator families present, and
the shape properties the compiler's selection logic keys off.
"""

import pytest

from repro.graph import ops
from repro.models import build_model


def _nodes_of(graph, op_type):
    return [n for n in graph if n.op_type == op_type]


def _shapes_of(graph, op_type):
    return [n.output_shape for n in _nodes_of(graph, op_type)]


class TestMobileNetV3:
    def test_depthwise_separable_structure(self):
        g = build_model("mobilenet_v3")
        assert len(_nodes_of(g, "DepthwiseConv2D")) == 15  # one per block
        # SE gates: sigmoid + multiply pairs.
        assert len(_nodes_of(g, "Sigmoid")) == 8
        assert len(_nodes_of(g, "Mul")) >= 8

    def test_resolution_pyramid(self):
        g = build_model("mobilenet_v3")
        spatial = {s[2] for s in _shapes_of(g, "Conv2D")}
        assert {112, 56, 28, 14, 7} <= spatial | {1}

    def test_classifier_head(self):
        g = build_model("mobilenet_v3")
        (softmax,) = _nodes_of(g, "Softmax")
        assert softmax.output_shape == (1, 1000)


class TestEfficientNetB0:
    def test_seven_stage_widths(self):
        g = build_model("efficientnet_b0")
        widths = {s[1] for s in _shapes_of(g, "Conv2D")}
        for expected in (16, 24, 40, 80, 112, 192, 320, 1280):
            assert expected in widths

    def test_se_on_every_block(self):
        g = build_model("efficientnet_b0")
        assert len(_nodes_of(g, "Sigmoid")) == 16  # one per MBConv


class TestResNet50:
    def test_stage_resolutions(self):
        g = build_model("resnet50")
        shapes = _shapes_of(g, "Conv2D")
        for channels, spatial in ((256, 56), (512, 28), (1024, 14), (2048, 7)):
            assert any(
                s[1] == channels and s[2] == spatial for s in shapes
            ), (channels, spatial)

    def test_sixteen_residual_adds(self):
        g = build_model("resnet50")
        assert len(_nodes_of(g, "Add")) == 16


class TestGenerativeModels:
    def test_fst_encode_decode_symmetry(self):
        g = build_model("fst")
        out = g.output_nodes()[0]
        inp = g.input_nodes()[0]
        assert out.output_shape[2:] == inp.output_shape[2:]
        assert len(_nodes_of(g, "TransposeConv2D")) == 2

    def test_cyclegan_nine_residual_blocks(self):
        g = build_model("cyclegan")
        assert len(_nodes_of(g, "Add")) == 9
        assert len(_nodes_of(g, "InstanceNorm")) >= 20

    def test_wdsr_upscales_2x(self):
        g = build_model("wdsr_b")
        inp = g.input_nodes()[0]
        out = g.output_nodes()[0]
        assert out.output_shape[2] == 2 * inp.output_shape[2]
        assert len(_nodes_of(g, "DepthToSpace")) == 2  # body + skip paths


class TestDetectionModels:
    def test_efficientdet_five_pyramid_levels(self):
        g = build_model("efficientdet_d0")
        head_names = [n.name for n in g if n.name.startswith(("cls_p", "box_p"))]
        assert len(head_names) == 10  # cls+box over P3..P7

    def test_efficientdet_head_shapes(self):
        g = build_model("efficientdet_d0")
        cls_p3 = [n for n in g if n.name == "cls_p3"][0]
        assert cls_p3.output_shape == (1, 9 * 90, 64, 64)
        box_p7 = [n for n in g if n.name == "box_p7"][0]
        assert box_p7.output_shape == (1, 36, 4, 4)

    def test_pixor_dual_heads(self):
        g = build_model("pixor")
        objectness = [n for n in g if n.name == "objectness"][0]
        box = [n for n in g if n.name == "box_params"][0]
        assert objectness.output_shape[1] == 1
        assert box.output_shape[1] == 6
        assert objectness.output_shape[2:] == box.output_shape[2:]

    def test_pixor_bev_input(self):
        g = build_model("pixor")
        (bev,) = g.input_nodes()
        assert bev.output_shape == (1, 36, 800, 704)


class TestTransformers:
    def test_tinybert_four_layers(self):
        g = build_model("tinybert")
        attn_products = [
            n for n in g if n.name.endswith("_qk")
        ]
        assert len(attn_products) == 4

    def test_tinybert_attention_shapes(self):
        g = build_model("tinybert")
        qk = [n for n in g if n.name == "l0_attn_qk"][0]
        assert qk.output_shape == (1, 12, 256, 256)  # heads x seq x seq

    def test_conformer_sixteen_blocks(self):
        g = build_model("conformer")
        block_outputs = [n for n in g if n.name.endswith("_ln_out")]
        assert len(block_outputs) == 16

    def test_conformer_subsampling(self):
        g = build_model("conformer")
        proj = [n for n in g if n.name == "input_proj"][0]
        assert proj.output_shape == (1, 400, 144)  # 1600 frames / 4

    def test_conformer_macaron_ffns(self):
        g = build_model("conformer")
        scales = [n for n in g if n.name.endswith("_scale")]
        assert len(scales) == 32  # two half-step FFNs per block


class TestCompilerOnModels:
    """The selection layer behaves sensibly on real model graphs."""

    @pytest.mark.parametrize("name", ["wdsr_b", "mobilenet_v3"])
    def test_selection_beats_local(self, name):
        from repro.compiler import CompilerOptions, compile_model

        graph = build_model(name)
        gcd2 = compile_model(graph, CompilerOptions(selection="gcd2"))
        local = compile_model(graph, CompilerOptions(selection="local"))
        assert gcd2.selection.cost <= local.selection.cost + 1e-6

    def test_varied_shapes_get_varied_plans(self):
        # The paper's core observation: operand shapes vary across a
        # network, so the global selection mixes instructions rather
        # than using one uniformly (ResNet-50 mixes 1x1/3x3/7x7 convs).
        from repro.compiler import compile_model

        compiled = compile_model(build_model("resnet50"))
        plans = {
            cn.plan.instruction
            for cn in compiled.nodes
            if cn.node.op.is_compute_heavy
        }
        assert len(plans) >= 2

    def test_uniform_shape_model_converges_to_one_plan(self):
        # WDSR's narrow-channel convs all share the same huge-M/small-N
        # shape: the optimizer settles on one instruction and zero
        # internal transforms — consistency is exactly the win.
        from repro.compiler import compile_model

        compiled = compile_model(build_model("wdsr_b"))
        plans = {
            cn.plan.instruction
            for cn in compiled.nodes
            if cn.node.op.is_compute_heavy
        }
        assert len(plans) == 1
