"""Unit tests for loop unrolling selection."""

import pytest

from repro.codegen.matmul import VECTOR_REGISTER_COUNT, registers_required
from repro.core.unroll import (
    DEFAULT_UNROLL_CONFIG,
    UnrollConfig,
    UnrollPlan,
    adaptive_unroll,
    body_cycles,
    classify_output_shape,
    exhaustive_unroll,
    kernel_cycles,
)
from repro.isa.instructions import Opcode


class TestClassification:
    def test_skinny(self):
        assert classify_output_shape(4096, 16) == "skinny"

    def test_fat(self):
        assert classify_output_shape(16, 4096) == "fat"

    def test_near_square(self):
        assert classify_output_shape(512, 512) == "near-square"
        assert classify_output_shape(512, 256) == "near-square"


class TestAdaptive:
    def test_near_square_picks_4_4(self):
        # Figure 12a: the exhaustive best for the studied kernel is 4-4
        # and GCD2's heuristic lands there too.
        assert adaptive_unroll(512, 512).label == "4-4"

    def test_skinny_unrolls_rows(self):
        plan = adaptive_unroll(4096, 16)
        assert plan.outer > plan.mid

    def test_fat_unrolls_columns(self):
        plan = adaptive_unroll(128, 4096)
        assert plan.mid > plan.outer

    def test_clamped_to_available_row_panels(self):
        # m=256 is two 128-row panels: outer > 2 only computes padding.
        plan = adaptive_unroll(256, 256)
        assert plan.outer <= 2

    def test_register_budget_respected(self):
        for m, n in [(4096, 16), (512, 512), (16, 4096), (128, 64)]:
            plan = adaptive_unroll(m, n, Opcode.VMPY)
            assert (
                registers_required(Opcode.VMPY, plan.outer, plan.mid)
                <= VECTOR_REGISTER_COUNT
            )


class TestKernelCycles:
    def test_unrolling_reduces_cycles(self):
        base = kernel_cycles(Opcode.VRMPY, 512, 64, 512, UnrollPlan(1, 1))
        unrolled = kernel_cycles(Opcode.VRMPY, 512, 64, 512, UnrollPlan(4, 4))
        assert unrolled < base

    def test_oversized_factors_lose(self):
        # Figure 12: performance drops when spilling kicks in.
        good = kernel_cycles(Opcode.VRMPY, 4096, 64, 512, UnrollPlan(4, 4))
        spilled = kernel_cycles(
            Opcode.VRMPY, 4096, 64, 512, UnrollPlan(16, 16)
        )
        assert spilled > good

    def test_body_cycles_cached_and_positive(self):
        a = body_cycles(Opcode.VRMPY, 2, 2)
        b = body_cycles(Opcode.VRMPY, 2, 2)
        assert a == b > 0


class TestExhaustive:
    def test_finds_at_least_adaptive_quality(self):
        m, k, n = 512, 64, 512
        plan = adaptive_unroll(m, n, Opcode.VRMPY)
        adaptive_cost = kernel_cycles(Opcode.VRMPY, m, k, n, plan)
        _, best_cost = exhaustive_unroll(Opcode.VRMPY, m, k, n)
        assert best_cost <= adaptive_cost

    def test_adaptive_close_to_exhaustive(self):
        # The paper: "GCD2 achieves very comparable performance" to the
        # exhaustive search across kernels.
        for m, k, n in [(512, 64, 512), (1024, 128, 256), (256, 256, 256)]:
            plan = adaptive_unroll(m, n, Opcode.VRMPY)
            adaptive_cost = kernel_cycles(Opcode.VRMPY, m, k, n, plan)
            _, best = exhaustive_unroll(Opcode.VRMPY, m, k, n)
            assert adaptive_cost <= best * 1.25

    def test_restricted_factor_set(self):
        plan, _ = exhaustive_unroll(
            Opcode.VRMPY, 512, 64, 512, factors=(1, 2)
        )
        assert plan.outer in (1, 2) and plan.mid in (1, 2)


class TestRegisterModel:
    def test_monotone_in_factors(self):
        assert registers_required(Opcode.VRMPY, 4, 4) < registers_required(
            Opcode.VRMPY, 8, 8
        )

    def test_pair_output_instructions_need_more(self):
        assert registers_required(Opcode.VMPY, 4, 4) > registers_required(
            Opcode.VRMPY, 4, 4
        )


class TestUnrollConfig:
    def test_defaults_are_the_paper_constants(self):
        config = UnrollConfig()
        assert config.skinny_aspect == 4.0
        assert config.fat_aspect == 0.25
        assert config.skinny_seed == (8, 2)
        assert config.fat_seed == (2, 8)
        assert config.square_seed == (4, 4)
        assert config.waste_bound == 0.25
        assert config == DEFAULT_UNROLL_CONFIG

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"skinny_aspect": 0.0},
            {"skinny_aspect": float("nan")},
            {"fat_aspect": -1.0},
            {"fat_aspect": float("inf")},
            {"skinny_aspect": 0.2},  # below default fat_aspect
            {"skinny_seed": (8,)},
            {"skinny_seed": (0, 2)},
            {"fat_seed": (2.0, 8)},
            {"square_seed": [4, 4]},
            {"waste_bound": -0.1},
            {"waste_bound": 1.0},
            {"waste_bound": float("nan")},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            UnrollConfig(**kwargs)

    def test_seed_for_each_shape_class(self):
        config = UnrollConfig()
        assert config.seed_for("skinny") == (8, 2)
        assert config.seed_for("fat") == (2, 8)
        assert config.seed_for("near-square") == (4, 4)
        with pytest.raises(ValueError):
            config.seed_for("round")

    def test_signature_is_value_identity(self):
        assert UnrollConfig().signature() == \
            DEFAULT_UNROLL_CONFIG.signature()
        assert UnrollConfig(skinny_seed=(8, 4)).signature() != \
            UnrollConfig().signature()

    def test_classification_honours_config_thresholds(self):
        # m/n == 2: near-square under defaults, skinny when the
        # threshold drops below 2.
        assert classify_output_shape(256, 128) == "near-square"
        tight = UnrollConfig(skinny_aspect=1.5, fat_aspect=0.25)
        assert classify_output_shape(256, 128, tight) == "skinny"

    def test_adaptive_unroll_uses_configured_seeds(self):
        default = adaptive_unroll(4096, 64, Opcode.VRMPY)
        assert (default.outer, default.mid) == (8, 2)
        tuned = adaptive_unroll(
            4096, 64, Opcode.VRMPY,
            UnrollConfig(skinny_seed=(1, 8)),
        )
        assert (tuned.outer, tuned.mid) == (1, 8)
        # A seed over the VRMPY register budget (8x4 needs 42 of 32
        # registers) is clamped rather than taken at face value.
        clamped = adaptive_unroll(
            4096, 64, Opcode.VRMPY,
            UnrollConfig(skinny_seed=(8, 4)),
        )
        assert registers_required(
            Opcode.VRMPY, clamped.outer, clamped.mid
        ) <= VECTOR_REGISTER_COUNT

    def test_adaptive_unroll_clamps_configured_seeds(self):
        # A huge configured seed must still respect the register
        # budget and the available work.
        plan = adaptive_unroll(
            128, 8, Opcode.VRMPY,
            UnrollConfig(skinny_seed=(16, 16)),
        )
        assert registers_required(
            Opcode.VRMPY, plan.outer, plan.mid
        ) <= VECTOR_REGISTER_COUNT
        assert plan.outer == 1  # only one row panel of work exists

    def test_waste_bound_halves_oversized_outer(self):
        # 5 row panels under outer=8: 3/5 waste > 0.25 -> halved until
        # tolerable; a permissive bound keeps the bigger factor.
        m = 5 * 128
        strict = adaptive_unroll(m, 8, Opcode.VRMPY)
        permissive = adaptive_unroll(
            m, 8, Opcode.VRMPY, UnrollConfig(waste_bound=0.9)
        )
        assert strict.outer < permissive.outer
