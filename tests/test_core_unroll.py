"""Unit tests for loop unrolling selection."""

import pytest

from repro.codegen.matmul import VECTOR_REGISTER_COUNT, registers_required
from repro.core.unroll import (
    UnrollPlan,
    adaptive_unroll,
    body_cycles,
    classify_output_shape,
    exhaustive_unroll,
    kernel_cycles,
)
from repro.isa.instructions import Opcode


class TestClassification:
    def test_skinny(self):
        assert classify_output_shape(4096, 16) == "skinny"

    def test_fat(self):
        assert classify_output_shape(16, 4096) == "fat"

    def test_near_square(self):
        assert classify_output_shape(512, 512) == "near-square"
        assert classify_output_shape(512, 256) == "near-square"


class TestAdaptive:
    def test_near_square_picks_4_4(self):
        # Figure 12a: the exhaustive best for the studied kernel is 4-4
        # and GCD2's heuristic lands there too.
        assert adaptive_unroll(512, 512).label == "4-4"

    def test_skinny_unrolls_rows(self):
        plan = adaptive_unroll(4096, 16)
        assert plan.outer > plan.mid

    def test_fat_unrolls_columns(self):
        plan = adaptive_unroll(128, 4096)
        assert plan.mid > plan.outer

    def test_clamped_to_available_row_panels(self):
        # m=256 is two 128-row panels: outer > 2 only computes padding.
        plan = adaptive_unroll(256, 256)
        assert plan.outer <= 2

    def test_register_budget_respected(self):
        for m, n in [(4096, 16), (512, 512), (16, 4096), (128, 64)]:
            plan = adaptive_unroll(m, n, Opcode.VMPY)
            assert (
                registers_required(Opcode.VMPY, plan.outer, plan.mid)
                <= VECTOR_REGISTER_COUNT
            )


class TestKernelCycles:
    def test_unrolling_reduces_cycles(self):
        base = kernel_cycles(Opcode.VRMPY, 512, 64, 512, UnrollPlan(1, 1))
        unrolled = kernel_cycles(Opcode.VRMPY, 512, 64, 512, UnrollPlan(4, 4))
        assert unrolled < base

    def test_oversized_factors_lose(self):
        # Figure 12: performance drops when spilling kicks in.
        good = kernel_cycles(Opcode.VRMPY, 4096, 64, 512, UnrollPlan(4, 4))
        spilled = kernel_cycles(
            Opcode.VRMPY, 4096, 64, 512, UnrollPlan(16, 16)
        )
        assert spilled > good

    def test_body_cycles_cached_and_positive(self):
        a = body_cycles(Opcode.VRMPY, 2, 2)
        b = body_cycles(Opcode.VRMPY, 2, 2)
        assert a == b > 0


class TestExhaustive:
    def test_finds_at_least_adaptive_quality(self):
        m, k, n = 512, 64, 512
        plan = adaptive_unroll(m, n, Opcode.VRMPY)
        adaptive_cost = kernel_cycles(Opcode.VRMPY, m, k, n, plan)
        _, best_cost = exhaustive_unroll(Opcode.VRMPY, m, k, n)
        assert best_cost <= adaptive_cost

    def test_adaptive_close_to_exhaustive(self):
        # The paper: "GCD2 achieves very comparable performance" to the
        # exhaustive search across kernels.
        for m, k, n in [(512, 64, 512), (1024, 128, 256), (256, 256, 256)]:
            plan = adaptive_unroll(m, n, Opcode.VRMPY)
            adaptive_cost = kernel_cycles(Opcode.VRMPY, m, k, n, plan)
            _, best = exhaustive_unroll(Opcode.VRMPY, m, k, n)
            assert adaptive_cost <= best * 1.25

    def test_restricted_factor_set(self):
        plan, _ = exhaustive_unroll(
            Opcode.VRMPY, 512, 64, 512, factors=(1, 2)
        )
        assert plan.outer in (1, 2) and plan.mid in (1, 2)


class TestRegisterModel:
    def test_monotone_in_factors(self):
        assert registers_required(Opcode.VRMPY, 4, 4) < registers_required(
            Opcode.VRMPY, 8, 8
        )

    def test_pair_output_instructions_need_more(self):
        assert registers_required(Opcode.VMPY, 4, 4) > registers_required(
            Opcode.VRMPY, 4, 4
        )
