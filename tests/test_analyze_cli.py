"""End-to-end tests for ``repro analyze`` (CLI surface + gates)."""

import json
import math

import pytest

from repro.cli import main
from repro.graph.serialization import save_graph
from tests.conftest import small_cnn


@pytest.fixture()
def cnn_path(tmp_path):
    path = tmp_path / "small_cnn.json"
    save_graph(small_cnn(), path)
    return str(path)


class TestAnalyzeCommand:
    def test_clean_model_exits_zero(self, cnn_path, capsys):
        assert main(["analyze", cnn_path]) == 0
        out = capsys.readouterr().out
        assert "nodes analyzed" in out
        assert "arena:" in out
        assert "proved" in out
        assert "FAILED" not in out

    def test_json_format_parses(self, cnn_path, capsys):
        assert main(["analyze", cnn_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["errors"] == 0
        assert summary["proved"]["accumulators_fit_int32"]
        assert summary["proved"]["memory_plan_safe"]
        assert payload["memory_plan"]["arena_size"] > 0
        assert payload["memory_plan"]["slots"]
        assert payload["intervals"]
        for lo, hi in payload["intervals"].values():
            assert lo <= hi

    def test_zoo_name_resolves(self, capsys):
        assert main(["analyze", "tinybert"]) == 0
        assert "tinybert" in capsys.readouterr().out

    def test_warning_gate_trips_on_zoo_warnings(self, capsys):
        # tinybert carries QR005/QR006 warnings by construction.
        assert main(
            ["analyze", "tinybert", "--fail-on", "warning"]
        ) == 1
        assert "failing" in capsys.readouterr().err

    def test_unknown_model_exits_one(self, capsys):
        assert main(["analyze", "no_such_model"]) == 1
        assert capsys.readouterr().err


class TestBaselines:
    def test_write_then_suppress_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "analyze-baseline.json"
        assert main(
            ["analyze", "tinybert", "--write-baseline", str(baseline)]
        ) == 0
        assert json.loads(baseline.read_text())["version"] == 1
        capsys.readouterr()
        assert main(
            [
                "analyze",
                "tinybert",
                "--baseline",
                str(baseline),
                "--fail-on",
                "warning",
            ]
        ) == 0


class TestCalibrationOverride:
    def _write(self, tmp_path, payload):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_infinite_bound_caught_at_compile_time(
        self, cnn_path, tmp_path, capsys
    ):
        # The runtime QuantizationError becomes a static QR002 ERROR:
        # the pathological calibration fails the gate before any
        # request executes.
        calib = self._write(tmp_path, {"image": math.inf})
        assert main(
            ["analyze", cnn_path, "--calibration", calib, "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "LINT-QR002" in rules
        # Bounds the file does not supply are missing, not guessed.
        assert "LINT-QR001" in rules
        assert payload["summary"]["errors"] > 0
        assert not payload["summary"]["proved"]["calibration_complete"]

    def test_unknown_node_name_rejected(
        self, cnn_path, tmp_path, capsys
    ):
        calib = self._write(tmp_path, {"no_such_tensor": 1.0})
        assert main(
            ["analyze", cnn_path, "--calibration", calib]
        ) == 1
        assert "unknown node" in capsys.readouterr().err
