"""Tests for the ``repro tune`` command and the tuned compile path."""

import json

import pytest

from repro.cli import main
from repro.compiler import CompilerOptions, compile_model
from repro.models import build_model
from repro.tune import DEFAULT_TRIAL_CONFIG, TrialDB, default_tune_dir


def _tune(tmp_path, *extra):
    return main([
        "tune", "wdsr_b", "--trials", "3", "--seed", "7",
        "--cache-dir", str(tmp_path), *extra,
    ])


class TestTuneCommand:
    def test_prints_leaderboard_and_best(self, tmp_path, capsys):
        assert _tune(tmp_path) == 0
        out = capsys.readouterr().out
        assert "autotune: wdsr_b" in out
        assert "best:" in out
        assert "x over default" in out

    def test_records_land_in_the_db(self, tmp_path, capsys):
        assert _tune(tmp_path) == 0
        db = TrialDB(default_tune_dir(str(tmp_path)))
        records = db.records(model="wdsr_b")
        assert len(records) == 3
        assert records[0].fingerprint == DEFAULT_TRIAL_CONFIG.fingerprint
        assert db.best("wdsr_b").cycles <= records[0].cycles

    def test_json_artifact_is_deterministic(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert _tune(
            tmp_path / "ca", "--json", "--output", str(out_a)
        ) == 0
        assert _tune(
            tmp_path / "cb", "--json", "--output", str(out_b),
            "--jobs", "4",
        ) == 0
        # Byte-identical across runs AND across worker counts: the
        # payload carries no wall-clock fields and no jobs field.
        assert out_a.read_bytes() == out_b.read_bytes()
        payload = json.loads(out_a.read_text())
        assert payload["benchmark"] == "autotune"
        assert payload["model"] == "wdsr_b"
        assert payload["trials"] == 3
        assert payload["best_cycles"] <= payload["baseline_cycles"]
        assert payload["speedup"] >= 1.0
        assert len(payload["rows"]) == 3

    def test_unknown_model_rejected(self, tmp_path, capsys):
        assert main([
            "tune", "alexnet", "--cache-dir", str(tmp_path),
        ]) == 1
        assert "alexnet" in capsys.readouterr().err


class TestTuneShow:
    def test_show_before_any_trials(self, tmp_path, capsys):
        assert main([
            "tune", "show", "wdsr_b", "--cache-dir", str(tmp_path),
        ]) == 0
        assert "no recorded trials" in capsys.readouterr().out

    def test_show_after_tune(self, tmp_path, capsys):
        assert _tune(tmp_path) == 0
        capsys.readouterr()
        assert main([
            "tune", "show", "wdsr_b", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded trials: wdsr_b" in out
        assert "3 trial(s) recorded" in out
        assert "best:" in out

    def test_show_surfaces_the_machine_name(self, tmp_path, capsys):
        assert _tune(tmp_path, "--machine", "narrow64") == 0
        capsys.readouterr()
        assert main([
            "tune", "show", "wdsr_b", "--cache-dir", str(tmp_path),
            "--machine", "narrow64",
        ]) == 0
        out = capsys.readouterr().out
        assert "machine narrow64" in out

    def test_records_carry_the_machine_name(self, tmp_path):
        assert _tune(tmp_path) == 0
        db = TrialDB(default_tune_dir(str(tmp_path)))
        records = db.records(model="wdsr_b")
        assert records and all(
            r.machine == "hexagon698" for r in records
        )

    def test_show_needs_a_model(self, tmp_path, capsys):
        assert main(["tune", "show"]) == 2
        assert "needs a model" in capsys.readouterr().err

    def test_show_unknown_model_rejected(self, tmp_path, capsys):
        assert main([
            "tune", "show", "alexnet", "--cache-dir", str(tmp_path),
        ]) == 1
        assert "alexnet" in capsys.readouterr().err


class TestTunedCompile:
    def test_compile_model_applies_best_recorded_config(
        self, tmp_path, capsys
    ):
        assert _tune(tmp_path) == 0
        db = TrialDB(default_tune_dir(str(tmp_path)))
        best = db.best("wdsr_b")
        graph = build_model("wdsr_b")
        compiled = compile_model(
            graph,
            CompilerOptions(tuned=True, cache_dir=str(tmp_path)),
        )
        simulated = compiled.profile.cycles + compiled.transform_cycles
        assert simulated == pytest.approx(best.cycles)
        assert compiled.diagnostics.tuning["fingerprint"] == \
            best.fingerprint
        assert compiled.diagnostics.tuning["source"] == "trial-db"

    def test_tuned_compile_without_trials_warns(self, tmp_path):
        graph = build_model("wdsr_b")
        compiled = compile_model(
            graph,
            CompilerOptions(tuned=True, cache_dir=str(tmp_path)),
        )
        assert compiled.diagnostics.tuning == {}
        assert any(
            "no trial recorded" in w
            for w in compiled.diagnostics.warnings
        )

    def test_verify_tuned_flag(self, tmp_path, capsys):
        assert _tune(tmp_path) == 0
        capsys.readouterr()
        assert main([
            "verify", "wdsr_b", "--tuned",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "compiled clean under strict verification" in out
        assert "tuned config:" in out
        assert "differential check" in out
