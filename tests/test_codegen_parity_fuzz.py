"""Parity fuzzing for the emitted executor.

The codegen contract is *bit-identity*: for every graph the zoo or the
fuzzer can produce, the emitted straight-line code must return byte-for-
byte the interpreter's outputs, with and without the arena.  Fuzz
failures here mean a hot-path divergence the bench gates would hide.
"""

import numpy as np
import pytest

from repro.codegen import set_emit_fault_hook
from repro.compiler import compile_model
from repro.harness import example_feeds
from repro.runtime import InferenceEngine, QuantizedExecutor
from repro.serve.pool import EnginePool
from repro.verify.runtime import verify_engine_parity
from tests.conftest import chain_graph, random_dag, small_cnn

FUZZ_SEEDS = list(range(12))


def _prepared(graph, requests=3):
    compiled = compile_model(graph)
    executor = QuantizedExecutor(compiled, seed=0, kernel_mac_limit=0)
    calibration = executor.calibrate(
        example_feeds(compiled.graph, count=2, seed=99)
    )
    feeds = example_feeds(compiled.graph, count=requests, seed=7)
    return compiled, calibration, feeds


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
@pytest.mark.parametrize("arena", [False, True], ids=["plain", "arena"])
def test_random_dag_bit_identical(seed, arena):
    compiled, calibration, feeds = _prepared(random_dag(seed))
    engine = InferenceEngine(
        compiled,
        calibration,
        seed=0,
        kernel_mac_limit=0,
        arena=arena,
        codegen=True,
    )
    try:
        report = verify_engine_parity(engine, feeds, require_codegen=True)
        assert report["outputs"] > 0
    finally:
        engine.close()


@pytest.mark.parametrize(
    "graph_factory",
    [small_cnn, lambda: chain_graph(length=5, size=12)],
    ids=["small_cnn", "chain"],
)
def test_named_graphs_bit_identical_both_modes(graph_factory):
    compiled, calibration, feeds = _prepared(graph_factory(), requests=4)
    for arena in (False, True):
        engine = InferenceEngine(
            compiled,
            calibration,
            seed=0,
            kernel_mac_limit=0,
            arena=arena,
            codegen=True,
        )
        try:
            verify_engine_parity(engine, feeds, require_codegen=True)
        finally:
            engine.close()


def test_arena_and_plain_emit_identical_outputs():
    # Same batch through both modes of the *same* emitted model must
    # agree with each other, not just each with the interpreter.
    compiled, calibration, feeds = _prepared(small_cnn(), requests=4)
    engines = [
        InferenceEngine(
            compiled,
            calibration,
            seed=0,
            kernel_mac_limit=0,
            arena=arena,
            codegen=True,
        )
        for arena in (False, True)
    ]
    try:
        plain_out = engines[0].run_batch(feeds)
        arena_out = engines[1].run_batch(feeds)
        for sample_a, sample_b in zip(plain_out, arena_out):
            assert set(sample_a) == set(sample_b)
            for key in sample_a:
                assert np.array_equal(sample_a[key], sample_b[key])
    finally:
        for engine in engines:
            engine.close()


class TestEmitFailureFuzz:
    """A broken emitter must never break serving — only degrade it."""

    def test_pool_records_startup_degradation_and_serves(self):
        def boom(compiled):
            raise RuntimeError("fuzzed-emit-fault")

        compiled, calibration, feeds = _prepared(small_cnn())
        previous = set_emit_fault_hook(boom)
        try:
            pool = EnginePool(
                compiled,
                size=2,
                calibration_feeds=example_feeds(
                    compiled.graph, count=2, seed=99
                ),
                codegen=True,
            )
            try:
                assert pool.startup_degradations == [
                    {
                        "component": "inference",
                        "from": "codegen",
                        "to": "interpreter",
                        "reason": pool.startup_degradations[0]["reason"],
                    }
                ]
                assert (
                    "fuzzed-emit-fault"
                    in pool.startup_degradations[0]["reason"]
                )
                response = pool.infer(feeds)
                assert response["mode"] == "batched"
                assert len(response["outputs"]) == len(feeds)
                # The response carries the degradation so callers see
                # they were served by the interpreter.
                assert any(
                    entry["from"] == "codegen"
                    and entry["to"] == "interpreter"
                    for entry in response["degradations"]
                )
            finally:
                pool.close()
        finally:
            set_emit_fault_hook(previous)

    def test_degraded_engine_is_still_bit_identical(self):
        def boom(compiled):
            raise RuntimeError("fuzzed-emit-fault")

        compiled, calibration, feeds = _prepared(small_cnn())
        previous = set_emit_fault_hook(boom)
        try:
            engine = InferenceEngine(
                compiled,
                calibration,
                seed=0,
                kernel_mac_limit=0,
                arena=True,
                codegen=True,
            )
            try:
                verify_engine_parity(engine, feeds)
                assert engine._codegen_error is not None
            finally:
                engine.close()
        finally:
            set_emit_fault_hook(previous)

    def test_healthy_pool_has_no_startup_degradations(self):
        compiled, calibration, feeds = _prepared(small_cnn())
        pool = EnginePool(
            compiled,
            size=2,
            calibration_feeds=example_feeds(
                compiled.graph, count=2, seed=99
            ),
            codegen=True,
        )
        try:
            assert pool.startup_degradations == []
            response = pool.infer(feeds)
            assert response["mode"] == "batched"
            assert response["degradations"] == []
        finally:
            pool.close()
