"""Tests for SDA packing (Algorithm 1) and its baselines.

Property test: every packer must produce a *legal* schedule for any
program — all instructions packed once, resource limits respected, no
dependency reordered, no hard pair sharing a packet.
"""

import random

import pytest

from repro.codegen.elementwise import emit_division_body, emit_elementwise_body
from repro.codegen.matmul import emit_matmul_body
from repro.core.packing.baselines import (
    pack_list_schedule,
    pack_soft_to_hard,
    pack_soft_to_none,
)
from repro.core.packing.evaluate import schedule_summary, validate_schedule
from repro.core.packing.sda import SdaConfig, pack_best, pack_instructions
from repro.isa.instructions import Instruction, Opcode
from repro.machine.pipeline import schedule_cycles
from tests.conftest import stream_program

ALL_PACKERS = [
    pack_instructions,
    pack_soft_to_hard,
    pack_soft_to_none,
    pack_list_schedule,
    pack_best,
]


def _random_program(seed: int, length: int = 25):
    """Random but well-formed vector program."""
    rnd = random.Random(seed)
    program = []
    live = ["v_init"]
    program.append(
        Instruction(Opcode.VLOAD, dests=("v_init",), srcs=("r_base",))
    )
    for i in range(length):
        roll = rnd.random()
        if roll < 0.25:
            program.append(
                Instruction(
                    Opcode.VLOAD, dests=(f"v_l{i}",), srcs=("r_base",),
                    imms=(i * 128,),
                )
            )
            live.append(f"v_l{i}")
        elif roll < 0.5:
            srcs = (rnd.choice(live), rnd.choice(live))
            program.append(
                Instruction(
                    rnd.choice([Opcode.VADD, Opcode.VSUB, Opcode.VMAX]),
                    dests=(f"v_a{i}",),
                    srcs=srcs,
                )
            )
            live.append(f"v_a{i}")
        elif roll < 0.7:
            program.append(
                Instruction(
                    Opcode.VRMPY,
                    dests=(f"v_m{i}",),
                    srcs=(rnd.choice(live),),
                    imms=(1, 2, 3, 4),
                )
            )
            live.append(f"v_m{i}")
        elif roll < 0.85:
            program.append(
                Instruction(
                    Opcode.VSTORE, srcs=(rnd.choice(live), "r_out"),
                    imms=(i * 128,),
                )
            )
        else:
            program.append(
                Instruction(
                    Opcode.ADD, dests=("r_base",), srcs=("r_base",),
                    imms=(128,),
                )
            )
    return program


class TestScheduleValidity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("packer", ALL_PACKERS)
    def test_random_programs_pack_legally(self, seed, packer):
        program = _random_program(seed)
        packets = packer(program)
        validate_schedule(packets, program)

    @pytest.mark.parametrize("packer", ALL_PACKERS)
    def test_kernel_bodies_pack_legally(self, packer):
        for body in (
            emit_matmul_body(Opcode.VRMPY, 4, 4, include_epilogue=True),
            emit_matmul_body(Opcode.VMPY, 2, 2, include_epilogue=True),
            emit_elementwise_body("Add", 3, unroll=2),
            emit_division_body(),
        ):
            validate_schedule(packer(body), body)

    @pytest.mark.parametrize("packer", ALL_PACKERS)
    def test_single_instruction_program(self, packer):
        program = [Instruction(Opcode.NOP)]
        packets = packer(program)
        validate_schedule(packets, program)
        assert len(packets) == 1

    @pytest.mark.parametrize("packer", ALL_PACKERS)
    def test_empty_program(self, packer):
        assert packer([]) == []


class TestSdaBehaviour:
    def test_soft_pairs_can_share_a_packet(self):
        # The Figure 5 story: SDA merges soft-linked work that the
        # soft_to_hard variant must split.
        program = stream_program()
        sda = schedule_summary(pack_instructions(program))
        hard = schedule_summary(pack_soft_to_hard(program))
        assert sda.packets <= hard.packets

    def test_soft_to_hard_never_packs_dependent_pairs(self):
        program = stream_program()
        for packet in pack_soft_to_hard(program):
            assert packet.soft_pairs() == []

    def test_sda_cheaper_or_equal_on_aggregate(self):
        bodies = [
            emit_matmul_body(Opcode.VRMPY, 4, 4, include_epilogue=True),
            emit_matmul_body(Opcode.VMPY, 1, 1, include_epilogue=True),
            emit_elementwise_body("Add", 3, unroll=1),
            stream_program(),
        ]
        total = {"best": 0, "hard": 0, "none": 0}
        for body in bodies:
            total["best"] += schedule_cycles(pack_best(body))
            total["hard"] += schedule_cycles(pack_soft_to_hard(body))
            total["none"] += schedule_cycles(pack_soft_to_none(body))
        assert total["best"] <= total["hard"]
        assert total["best"] <= total["none"]

    def test_pack_best_never_worse_than_ablations(self):
        for seed in range(5):
            program = _random_program(seed)
            best = schedule_cycles(pack_best(program))
            assert best <= schedule_cycles(pack_soft_to_hard(program))
            assert best <= schedule_cycles(pack_soft_to_none(program))

    def test_fewer_packets_than_list_scheduling(self):
        # Figure 7 right: GCD2's packer emits fewer packets.
        body = emit_matmul_body(Opcode.VMPY, 4, 4, include_epilogue=True)
        sda = schedule_summary(pack_instructions(body))
        lst = schedule_summary(pack_list_schedule(body))
        assert sda.packets < lst.packets


class TestSdaConfig:
    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            SdaConfig(w=1.5)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SdaConfig(soft_mode="bogus")

    def test_modes_change_schedules(self):
        program = stream_program()
        cycles = {
            mode: schedule_cycles(
                pack_instructions(program, SdaConfig(soft_mode=mode))
            )
            for mode in ("sda", "hard", "none")
        }
        assert len(set(cycles.values())) >= 2  # not all identical


class TestSelectInstruction:
    """Determinism and efficiency of Equation 4's candidate selection."""

    def _tied_candidates(self):
        # Three independent VADDs: identical opcode/latency, no
        # dependencies, so every Equation 4 score ties exactly.
        a = Instruction(Opcode.VADD, dests=("v0",), srcs=("v1", "v2"))
        b = Instruction(Opcode.VADD, dests=("v3",), srcs=("v4", "v5"))
        seed = Instruction(Opcode.VADD, dests=("v6",), srcs=("v7", "v8"))
        return a, b, seed

    def test_ties_break_to_first_candidate(self):
        # Regression: `score >= best_score` kept the *last* tied
        # candidate, so schedules depended on candidate ordering.
        from repro.core.packing.idg import build_idg
        from repro.core.packing.sda import _select_instruction
        from repro.machine.packet import Packet

        a, b, seed = self._tied_candidates()
        idg = build_idg([a, b, seed])
        packet = Packet([seed])
        chosen = _select_instruction(
            idg, [a, b], packet, {seed.uid}, SdaConfig()
        )
        assert chosen is a

    def test_tie_break_is_input_order_stable(self):
        from repro.core.packing.idg import build_idg
        from repro.core.packing.sda import _select_instruction
        from repro.machine.packet import Packet

        a, b, seed = self._tied_candidates()
        idg = build_idg([a, b, seed])
        packet = Packet([seed])
        chosen = _select_instruction(
            idg, [b, a], packet, {seed.uid}, SdaConfig()
        )
        assert chosen is b  # first-best over the given candidate list

    def test_stalls_evaluated_once_per_candidate(self, monkeypatch):
        # Regression: the stall count was computed twice per candidate
        # (once filtering, once scoring).
        from repro.core.packing import sda as sda_mod
        from repro.core.packing.idg import build_idg
        from repro.machine.packet import Packet

        load = Instruction(
            Opcode.VLOAD, dests=("v0",), srcs=("r0",), imms=(0,)
        )
        consumer = Instruction(
            Opcode.VADD, dests=("v1",), srcs=("v0", "v2")
        )
        other = Instruction(
            Opcode.VADD, dests=("v3",), srcs=("v4", "v5")
        )
        idg = build_idg([load, consumer, other])
        packet = Packet([consumer])
        calls = []
        original = sda_mod._stalling_soft_pairs

        def counting(idg_arg, inst, packet_arg):
            calls.append(inst.uid)
            return original(idg_arg, inst, packet_arg)

        monkeypatch.setattr(
            sda_mod, "_stalling_soft_pairs", counting
        )
        sda_mod._select_instruction(
            idg, [load, other], packet, {consumer.uid}, SdaConfig()
        )
        assert sorted(calls) == sorted([load.uid, other.uid])


class TestSdaConfigValidation:
    def test_defaults_are_the_paper_constants(self):
        config = SdaConfig()
        assert config.w == 0.7
        assert config.soft_penalty == 8.0
        assert config.soft_mode == "sda"

    @pytest.mark.parametrize("w", [-0.1, 1.5])
    def test_w_outside_unit_interval_rejected(self, w):
        with pytest.raises(ValueError, match="w must be"):
            SdaConfig(w=w)

    @pytest.mark.parametrize(
        "penalty",
        [-1.0, -0.001, float("nan"), float("inf"), float("-inf"),
         "8.0", None, True],
    )
    def test_bad_soft_penalty_rejected(self, penalty):
        with pytest.raises(ValueError, match="soft_penalty"):
            SdaConfig(soft_penalty=penalty)

    def test_zero_soft_penalty_allowed(self):
        assert SdaConfig(soft_penalty=0.0).soft_penalty == 0.0

    def test_unknown_soft_mode_rejected(self):
        with pytest.raises(ValueError, match="soft_mode"):
            SdaConfig(soft_mode="fuzzy")

    def test_configured_packer_resolves_tuned_configs(self):
        from repro.core.packing import PACKERS, configured_packer

        body = emit_matmul_body(Opcode.VRMPY, 2, 2)
        default = configured_packer("sda", None)
        assert default is PACKERS["sda"]
        tuned = configured_packer("sda", SdaConfig(w=0.5, soft_penalty=2.0))
        packets = tuned(body)
        validate_schedule(packets, body)

    def test_configured_packer_unknown_name(self):
        from repro.core.packing import configured_packer

        with pytest.raises(KeyError):
            configured_packer("magic", SdaConfig())
