"""Tests for code generation: functional kernels and loop bodies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.elementwise import (
    emit_division_body,
    emit_elementwise_body,
)
from repro.codegen.lower import LoweredKernel, lower_node
from repro.codegen.matmul import (
    VECTOR_REGISTER_COUNT,
    emit_matmul_body,
    matmul_int32,
    registers_required,
)
from repro.codegen.opts import apply_division_lut
from repro.core.plans import ExecutionPlan
from repro.core.unroll import UnrollPlan
from repro.errors import CodegenError
from repro.graph import ops
from repro.graph.graph import ComputationalGraph
from repro.isa.instructions import Instruction, Opcode
from repro.tensor.layout import Layout

PRIMARY = (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY)


class TestFunctionalMatmul:
    """The layouts and instructions actually compute correct products."""

    @pytest.mark.parametrize("instr", PRIMARY)
    @pytest.mark.parametrize(
        "shape",
        [(1, 1, 1), (5, 3, 2), (32, 32, 32), (130, 17, 9),
         (64, 64, 64), (200, 31, 5), (128, 4, 128), (96, 96, 96)],
    )
    def test_exact_against_numpy(self, instr, shape):
        m, k, n = shape
        rng = np.random.default_rng(m * 1000 + k * 10 + n)
        a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
        b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
        expected = a.astype(np.int32) @ b.astype(np.int32)
        got = matmul_int32(a, b, instr)
        assert got.shape == expected.shape
        assert (got == expected).all()

    @given(
        m=st.integers(1, 80),
        k=st.integers(1, 20),
        n=st.integers(1, 12),
        instr=st.sampled_from(list(PRIMARY)),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_on_random_shapes(self, m, k, n, instr):
        rng = np.random.default_rng(m * 7919 + k * 97 + n)
        a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
        b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
        expected = a.astype(np.int32) @ b.astype(np.int32)
        assert (matmul_int32(a, b, instr) == expected).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CodegenError):
            matmul_int32(
                np.zeros((4, 5), np.int8),
                np.zeros((6, 4), np.int8),
                Opcode.VMPY,
            )

    def test_unsupported_instruction_rejected(self):
        with pytest.raises(CodegenError):
            matmul_int32(
                np.zeros((4, 4), np.int8),
                np.zeros((4, 4), np.int8),
                Opcode.VADD,
            )


class TestMatmulBodies:
    @pytest.mark.parametrize("instr", PRIMARY)
    def test_body_ends_with_loop(self, instr):
        body = emit_matmul_body(instr)
        assert body[-1].opcode is Opcode.LOOP

    @pytest.mark.parametrize("instr", PRIMARY)
    def test_mult_count_scales_with_unroll(self, instr):
        def mults(body):
            return sum(1 for i in body if i.opcode is instr)

        assert mults(emit_matmul_body(instr, 2, 2)) == 4 * mults(
            emit_matmul_body(instr, 1, 1)
        )

    def test_epilogue_adds_requant_and_store(self):
        plain = emit_matmul_body(Opcode.VRMPY, 1, 1)
        full = emit_matmul_body(Opcode.VRMPY, 1, 1, include_epilogue=True)
        opcodes = [i.opcode for i in full]
        assert Opcode.VASR in opcodes
        assert Opcode.VSTORE in opcodes
        assert len(full) > len(plain)

    def test_spill_traffic_emitted_when_over_budget(self):
        # 8x8 vrmpy tiles demand far more than 32 registers.
        assert registers_required(Opcode.VRMPY, 8, 8) > (
            VECTOR_REGISTER_COUNT
        )
        body = emit_matmul_body(Opcode.VRMPY, 8, 8)
        spills = [i for i in body if "spill" in i.comment]
        assert spills

    def test_no_spills_within_budget(self):
        body = emit_matmul_body(Opcode.VRMPY, 2, 2)
        assert not [i for i in body if "spill" in i.comment]

    def test_vmpa_body_includes_permute(self):
        body = emit_matmul_body(Opcode.VMPA, 1, 1)
        assert any(i.opcode is Opcode.VSHUFF for i in body)

    def test_unknown_instruction_rejected(self):
        with pytest.raises(CodegenError):
            emit_matmul_body(Opcode.VADD)


class TestElementwiseBodies:
    def test_operand_count(self):
        body = emit_elementwise_body("Add", operands=3)
        loads = [i for i in body if i.opcode is Opcode.VLOAD]
        assert len(loads) == 3

    def test_widening_emits_two_stores(self):
        body = emit_elementwise_body("Add", 2, widen_output=True)
        stores = [i for i in body if i.opcode is Opcode.VSTORE]
        assert len(stores) == 2

    def test_unknown_family_rejected(self):
        with pytest.raises(CodegenError):
            emit_elementwise_body("Quux")

    def test_division_body_is_long_without_lut(self):
        slow = emit_division_body(use_lut=False)
        fast = emit_division_body(use_lut=True)
        assert len(slow) > 2 * len(fast)


class TestDivisionLutRewrite:
    def test_rewrite_shrinks_refinement_chain(self):
        body = emit_division_body(use_lut=False)
        rewritten = apply_division_lut(body)
        assert len(rewritten) < len(body)
        assert any(i.opcode is Opcode.LUT for i in rewritten)
        assert not any(
            i.comment.startswith("refine") for i in rewritten
        )

    def test_rewrite_is_noop_on_clean_code(self):
        body = emit_elementwise_body("Add", 2)
        assert apply_division_lut(list(body)) == list(body)


class TestLowerNode:
    def _graph(self):
        g = ComputationalGraph()
        x = g.add(ops.Input(shape=(1, 16, 8, 8)))
        conv = g.add(ops.Conv2D(out_channels=16, kernel=3), [x.node_id])
        relu = g.add(ops.ReLU(), [conv.node_id])
        div = g.add(ops.Div(), [relu.node_id, relu.node_id])
        return g, conv, relu, div

    def test_compute_node_lowered_as_gemm(self):
        g, conv, _, _ = self._graph()
        plan = ExecutionPlan(Opcode.VRMPY, Layout.COL4)
        kernel = lower_node(g, conv, plan, UnrollPlan(2, 2))
        assert isinstance(kernel, LoweredKernel)
        assert kernel.trips > 0
        assert "vrmpy" in kernel.description
        assert any(i.opcode is Opcode.VRMPY for i in kernel.body)

    def test_compute_node_requires_instruction(self):
        g, conv, _, _ = self._graph()
        with pytest.raises(CodegenError):
            lower_node(g, conv, ExecutionPlan(None, Layout.COL4))

    def test_elementwise_node_lowered_as_stream(self):
        g, _, relu, _ = self._graph()
        plan = ExecutionPlan(None, Layout.COL4)
        kernel = lower_node(g, relu, plan)
        assert kernel.trips == -(-(16 * 8 * 8) // 128)

    def test_division_lut_toggle(self):
        g, _, _, div = self._graph()
        plan = ExecutionPlan(None, Layout.ROW_MAJOR)
        with_lut = lower_node(g, div, plan, other_opts=True)
        without = lower_node(g, div, plan, other_opts=False)
        assert with_lut.instruction_count < without.instruction_count
        assert "LUT" in with_lut.description
