"""Tests for the end-to-end GCD2 compiler."""

import pytest

from repro.compiler import (
    CompiledModel,
    CompilerOptions,
    GCD2Compiler,
    compile_model,
)
from repro.core.packing.sda import SdaConfig
from repro.core.unroll import UnrollConfig
from repro.errors import ReproError
from repro.isa.instructions import Opcode
from tests.conftest import chain_graph, small_cnn


class TestOptions:
    def test_defaults_valid(self):
        CompilerOptions()

    def test_unknown_packer_rejected(self):
        with pytest.raises(ReproError):
            CompilerOptions(packing="bogus")

    def test_unknown_selection_rejected(self):
        with pytest.raises(ReproError):
            CompilerOptions(selection="bogus")

    def test_unknown_unrolling_rejected(self):
        with pytest.raises(ReproError):
            CompilerOptions(unrolling="bogus")

    def test_uniform_requires_instruction(self):
        with pytest.raises(ReproError):
            CompilerOptions(selection="uniform")
        CompilerOptions(
            selection="uniform", uniform_instruction=Opcode.VRMPY
        )

    def test_sda_config_must_be_typed(self):
        with pytest.raises(ReproError, match="sda_config"):
            CompilerOptions(sda_config={"w": 0.5})
        CompilerOptions(sda_config=SdaConfig(w=0.5))

    def test_unroll_config_must_be_typed(self):
        with pytest.raises(ReproError, match="unroll_config"):
            CompilerOptions(unroll_config=(8, 4))
        CompilerOptions(unroll_config=UnrollConfig(skinny_seed=(8, 4)))


class TestTuningConfigThreading:
    def test_unroll_config_reaches_kernel_plans(self):
        graph = small_cnn()
        default = GCD2Compiler().compile(graph)
        tuned = GCD2Compiler(
            CompilerOptions(unroll_config=UnrollConfig(skinny_seed=(1, 8)))
        ).compile(graph)
        default_shapes = {
            (n.node.node_id, n.kernel.trips, n.kernel.instruction_count)
            for n in default.nodes if n.kernel is not None
        }
        tuned_shapes = {
            (n.node.node_id, n.kernel.trips, n.kernel.instruction_count)
            for n in tuned.nodes if n.kernel is not None
        }
        assert default_shapes != tuned_shapes

    def test_sda_config_changes_schedules(self):
        # small graphs pack identically under every config; wdsr_b has
        # bodies with real soft-pair pressure, so neutering Equation 4
        # (w=0, no stall penalty) visibly degrades the schedules.
        from repro.models import build_model

        graph = build_model("wdsr_b")
        default = GCD2Compiler().compile(graph)
        tuned = GCD2Compiler(
            CompilerOptions(sda_config=SdaConfig(w=0.0, soft_penalty=0.0))
        ).compile(graph)
        assert tuned.total_packets != default.total_packets
        assert tuned.profile.cycles > default.profile.cycles

    def test_tuned_configs_share_one_result(self):
        # Same tuned options, two compiles: byte-stable simulated cost.
        graph = small_cnn()
        options = CompilerOptions(
            sda_config=SdaConfig(w=0.5),
            unroll_config=UnrollConfig(skinny_seed=(1, 8)),
        )
        a = GCD2Compiler(options).compile(graph)
        b = GCD2Compiler(options).compile(graph)
        assert a.profile.cycles + a.transform_cycles == \
            b.profile.cycles + b.transform_cycles


class TestCompilation:
    def test_compiles_small_model(self):
        compiled = compile_model(small_cnn())
        assert isinstance(compiled, CompiledModel)
        assert compiled.latency_ms > 0
        assert compiled.total_packets > 0
        assert compiled.total_cycles >= compiled.kernel_cycles

    def test_every_real_operator_compiled(self):
        compiled = compile_model(small_cnn())
        compiled_names = {cn.node.name for cn in compiled.nodes}
        for node in compiled.graph:
            if node.op_type not in ("Input", "Constant"):
                assert node.name in compiled_names

    def test_compute_nodes_have_instruction_plans(self):
        compiled = compile_model(small_cnn())
        for cn in compiled.nodes:
            if cn.node.op.is_compute_heavy:
                assert cn.plan.instruction is not None
                assert cn.packets

    def test_graph_passes_fuse_activations(self):
        with_passes = compile_model(
            small_cnn(), CompilerOptions(graph_passes=True)
        )
        without = compile_model(
            small_cnn(), CompilerOptions(graph_passes=False)
        )
        assert (
            with_passes.graph.operator_count()
            < without.graph.operator_count()
        )

    def test_profile_populated(self):
        compiled = compile_model(small_cnn())
        assert compiled.profile.packets > 0
        assert compiled.profile.macs > 0
        assert 0 < compiled.profile.slot_occupancy <= 1


class TestAblations:
    def test_local_selection_never_cheaper_than_gcd2(self):
        graph = small_cnn()
        gcd2 = compile_model(graph, CompilerOptions(selection="gcd2"))
        local = compile_model(graph, CompilerOptions(selection="local"))
        assert gcd2.selection.cost <= local.selection.cost + 1e-9

    def test_exhaustive_matches_gcd2_on_small_graph(self):
        graph = small_cnn()
        gcd2 = compile_model(graph, CompilerOptions(selection="gcd2"))
        exact = compile_model(graph, CompilerOptions(selection="exhaustive"))
        assert gcd2.selection.cost == pytest.approx(
            exact.selection.cost, rel=0.02
        )

    def test_chain_selection_on_chain(self):
        compiled = compile_model(
            chain_graph(length=6), CompilerOptions(selection="chain")
        )
        assert compiled.latency_ms > 0

    def test_pbqp_selection_runs(self):
        compiled = compile_model(
            small_cnn(), CompilerOptions(selection="pbqp")
        )
        assert compiled.latency_ms > 0

    def test_uniform_selection_assigns_one_instruction(self):
        compiled = compile_model(
            small_cnn(),
            CompilerOptions(
                selection="uniform", uniform_instruction=Opcode.VRMPY
            ),
        )
        for cn in compiled.nodes:
            if cn.node.op.is_compute_heavy:
                assert cn.plan.instruction is Opcode.VRMPY

    def test_weaker_packing_is_not_faster(self):
        graph = small_cnn()
        sda = compile_model(graph, CompilerOptions(packing="sda"))
        hard = compile_model(
            graph, CompilerOptions(packing="soft_to_hard")
        )
        assert hard.latency_ms >= sda.latency_ms * 0.999

    def test_kernel_efficiency_slows_compute(self):
        graph = small_cnn()
        fast = compile_model(graph, CompilerOptions())
        slow = compile_model(graph, CompilerOptions(kernel_efficiency=0.5))
        assert slow.latency_ms > fast.latency_ms

    def test_unrolling_modes_run(self):
        graph = small_cnn()
        for mode in ("none", "outer", "mid", "adaptive"):
            compiled = compile_model(
                graph, CompilerOptions(unrolling=mode)
            )
            assert compiled.latency_ms > 0

    def test_no_unrolling_not_faster_than_adaptive(self):
        graph = small_cnn()
        adaptive = compile_model(
            graph, CompilerOptions(unrolling="adaptive")
        )
        none = compile_model(graph, CompilerOptions(unrolling="none"))
        assert none.latency_ms >= adaptive.latency_ms * 0.999


class TestScheduleCache:
    def test_identical_bodies_share_schedules(self):
        compiler = GCD2Compiler(CompilerOptions())
        compiler.compile(small_cnn())
        cache_size = len(compiler.schedule_cache)
        compiler.compile(small_cnn("small_cnn_again"))
        # Same bodies -> cache barely grows.
        assert len(compiler.schedule_cache) <= cache_size + 2
