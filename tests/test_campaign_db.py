"""Campaign event log: states, corruption tolerance, crash artefacts."""

import json

import pytest

from repro.campaign import (
    CELL_DONE,
    CELL_ERROR,
    CELL_PENDING,
    CELL_RUNNING,
    CampaignDB,
    CampaignSpec,
    default_campaign_dir,
    wall_bucket,
)
from repro.errors import CampaignError

SPEC = CampaignSpec.from_payload({
    "models": ["wdsr_b"],
    "machines": ["hexagon698", "narrow64"],
    "strategies": ["random"],
    "trials": 2,
    "seed": 0,
})

HEX_CELL = "wdsr_b--hexagon698--random"
NARROW_CELL = "wdsr_b--narrow64--random"


class TestAppendAndRead:
    def test_events_round_trip_in_order(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running(HEX_CELL)
        db.record_done(HEX_CELL, {"best_cycles": 10.0})
        events = db.events()
        assert [e["event"] for e in events] == [
            "created", "running", "done"
        ]
        assert events[2]["best_cycles"] == 10.0

    def test_rejects_unknown_event_type(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown campaign event"):
            CampaignDB(tmp_path).append({"event": "exploded"})

    def test_missing_file_reads_empty(self, tmp_path):
        db = CampaignDB(tmp_path / "nothing")
        assert db.events() == []
        assert db.recorded_fingerprint() is None

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        with open(db.path, "a") as handle:
            handle.write("{not json\n")
            handle.write('["not", "an", "object"]\n')
            handle.write('{"event": "martian"}\n')
        db.record_running(HEX_CELL)
        assert [e["event"] for e in db.events()] == ["created", "running"]
        assert db.skipped_lines == 3

    def test_append_terminates_a_killed_partial_line(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        # Simulate kill -9 mid-append: a trailing line with no newline.
        with open(db.path, "a") as handle:
            handle.write('{"event": "done", "cell"')
        db.record_running(HEX_CELL)
        # The partial line is one corrupt line; the new event survives.
        events = db.events()
        assert [e["event"] for e in events] == ["created", "running"]
        assert db.skipped_lines == 1


class TestCellStates:
    def test_pending_is_the_absence_of_events(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        states = db.cell_states(SPEC)
        assert set(states) == {HEX_CELL, NARROW_CELL}
        assert all(s["status"] == CELL_PENDING for s in states.values())

    def test_last_event_wins(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running(HEX_CELL)
        db.record_error(HEX_CELL, "boom")
        db.record_running(HEX_CELL)  # a later retry
        db.record_done(HEX_CELL, {"best_cycles": 5.0, "speedup": 1.0})
        state = db.cell_states(SPEC)[HEX_CELL]
        assert state["status"] == CELL_DONE
        assert state["best_cycles"] == 5.0

    def test_error_state_carries_message(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running(NARROW_CELL)
        db.record_error(NARROW_CELL, "CompilerError: no")
        state = db.cell_states(SPEC)[NARROW_CELL]
        assert state["status"] == CELL_ERROR
        assert state["error"] == "CompilerError: no"

    def test_events_for_foreign_cells_are_skipped(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running("tinybert--wide6--grid")  # not in this grid
        states = db.cell_states(SPEC)
        assert states[HEX_CELL]["status"] == CELL_PENDING
        assert db.skipped_lines == 1

    def test_claimable_is_pending_plus_interrupted(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running(HEX_CELL)  # interrupted: no done/error after
        assert db.claimable(SPEC) == [HEX_CELL, NARROW_CELL]
        db.record_done(HEX_CELL, {"best_cycles": 1.0})
        assert db.claimable(SPEC) == [NARROW_CELL]
        db.record_running(NARROW_CELL)
        db.record_error(NARROW_CELL, "boom")
        # done and error are terminal: nothing left to claim.
        assert db.claimable(SPEC) == []


class TestSpecBinding:
    def test_ensure_spec_records_then_verifies(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.ensure_spec(SPEC)
        assert db.recorded_fingerprint() == SPEC.fingerprint
        db.ensure_spec(SPEC)  # idempotent
        assert len(db.events()) == 1

    def test_ensure_spec_rejects_a_different_grid(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.ensure_spec(SPEC)
        other = CampaignSpec.from_payload({
            "models": ["wdsr_b"],
            "machines": ["hexagon698"],
            "strategies": ["grid"],
        })
        with pytest.raises(CampaignError, match="belongs to spec"):
            db.ensure_spec(other)

    def test_clear_allows_a_fresh_start(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.ensure_spec(SPEC)
        db.clear()
        assert db.events() == []
        db.clear()  # idempotent on a missing file


class TestDigest:
    def test_stats_counts_states(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_created(SPEC)
        db.record_running(HEX_CELL)
        db.record_done(HEX_CELL, {"best_cycles": 1.0})
        db.record_running(NARROW_CELL)
        stats = db.stats(SPEC)
        assert stats["cells"] == 2
        assert stats["done"] == 1
        assert stats["running"] == 1
        assert stats["pending"] == 0
        assert stats["fingerprint"] == SPEC.fingerprint

    def test_default_dir_keyed_by_fingerprint(self, tmp_path):
        a = default_campaign_dir(tmp_path, SPEC.fingerprint)
        assert str(a).startswith(str(tmp_path))
        assert a.name == SPEC.fingerprint[:16]
        b = default_campaign_dir(tmp_path, "f" * 64)
        assert a != b

    def test_wall_buckets_are_coarse_labels(self):
        assert wall_bucket(0.2) == "<1s"
        assert wall_bucket(5) == "1s-10s"
        assert wall_bucket(30) == "10s-1m"
        assert wall_bucket(120) == "1m-10m"
        assert wall_bucket(3600) == ">10m"

    def test_event_lines_are_sorted_json(self, tmp_path):
        db = CampaignDB(tmp_path)
        db.record_done(HEX_CELL, {"speedup": 1.0, "best_cycles": 2.0})
        line = db.path.read_text().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)
