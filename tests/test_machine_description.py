"""Machine descriptions: registry, live plumbing, and multi-target laws.

Three families of guarantees:

* the :class:`MachineDescription` value itself (validation, canonical
  form, schema hashing, pickling, registry semantics);
* the *live-read* regression from the by-value-import bug: patching
  the process-default machine must be observed by the packer, the
  lint rules, and the cache schema hash alike (pre-fix, all three had
  bound the hexagon constants at import time);
* the cross-target matrix: every registered target compiles the zoo
  lint-clean, never exceeds its own packet limits, executes to the
  same values as the default target (functional behavior is
  machine-independent), and cannot resolve cache or tune-DB entries
  written for a different target.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.compiler import CompilerOptions, GCD2Compiler
from repro.cache.fingerprint import schema_hash
from repro.errors import ReproError
from repro.isa.instructions import Instruction, Opcode, ResourceClass
from repro.machine.description import (
    HEXAGON_698,
    NARROW_64,
    WIDE_6,
    MachineDescription,
    MachineError,
    get_machine,
    machine_context,
    machine_names,
    register_machine,
    resolve_machine,
)
from repro.models import build_model


def _salu(i):
    return Instruction(Opcode.ADD, dests=(f"ra{i}",), srcs=(f"rb{i}",))


def _vadd(i):
    return Instruction(
        Opcode.VADD, dests=(f"va{i}",), srcs=(f"vb{i}", f"vc{i}")
    )


ALL_MACHINES = ("hexagon698", "narrow64", "wide6")


class TestDescription:
    def test_registry_lists_shipped_targets(self):
        assert list(ALL_MACHINES) == machine_names()

    def test_get_machine_unknown_name(self):
        with pytest.raises(MachineError) as exc:
            get_machine("dsp9000")
        assert "dsp9000" in str(exc.value)
        assert "hexagon698" in str(exc.value.details["known_machines"])

    def test_resolve_accepts_name_description_and_none(self):
        assert resolve_machine("narrow64") is NARROW_64
        assert resolve_machine(WIDE_6) is WIDE_6
        assert resolve_machine(None) is HEXAGON_698

    def test_schema_hashes_are_distinct_per_target(self):
        hashes = {schema_hash(name) for name in ALL_MACHINES}
        assert len(hashes) == len(ALL_MACHINES)

    def test_hexagon_matches_legacy_constants(self):
        from repro.machine.packet import (
            MAX_PACKET_SLOTS,
            MAX_STORES_PER_PACKET,
            RESOURCE_LIMITS,
        )
        from repro.machine.pipeline import PIPELINE_STAGES, SOFT_RAW_STALL
        from repro.machine.profiler import PEAK_MACS_PER_CYCLE

        assert HEXAGON_698.max_packet_slots == MAX_PACKET_SLOTS == 4
        assert HEXAGON_698.max_stores_per_packet == MAX_STORES_PER_PACKET
        assert dict(HEXAGON_698.resource_limits) == RESOURCE_LIMITS
        assert HEXAGON_698.pipeline_stages == PIPELINE_STAGES
        assert HEXAGON_698.soft_raw_stall == SOFT_RAW_STALL
        assert HEXAGON_698.peak_macs_per_cycle == PEAK_MACS_PER_CYCLE

    def test_latency_overrides_apply(self):
        assert NARROW_64.latency(Opcode.VMPA) == 4
        assert NARROW_64.latency(Opcode.VRMPY) == 4
        assert HEXAGON_698.latency(Opcode.VMPA) == 3

    def test_vector_width_feeds_schema_hash(self):
        widened = dataclasses.replace(
            HEXAGON_698, name="hexagon698w", vector_bytes=256
        )
        assert schema_hash(widened) != schema_hash(HEXAGON_698)

    def test_validation_rejects_bad_geometry(self):
        with pytest.raises(MachineError):
            dataclasses.replace(HEXAGON_698, max_packet_slots=0)
        with pytest.raises(MachineError):
            dataclasses.replace(HEXAGON_698, vector_bytes=7)
        with pytest.raises(MachineError):
            dataclasses.replace(
                HEXAGON_698,
                resource_limits={ResourceClass.VMULT: 2},
            )

    def test_pickle_round_trip(self):
        clone = pickle.loads(pickle.dumps(NARROW_64))
        assert clone == NARROW_64
        assert clone.latency(Opcode.VMPA) == 4
        assert clone.schema_hash() == NARROW_64.schema_hash()

    def test_register_idempotent_and_conflict(self):
        register_machine(NARROW_64)  # same contents: a no-op
        conflicting = dataclasses.replace(NARROW_64, max_packet_slots=3)
        with pytest.raises(MachineError):
            register_machine(conflicting)

    def test_options_reject_unknown_machine_eagerly(self):
        with pytest.raises(ReproError):
            CompilerOptions(machine="dsp9000")


class TestLiveConstantPlumbing:
    """The by-value-import regression: a patched default is seen live."""

    def test_packer_lint_and_schema_observe_patched_slots(self):
        patched = dataclasses.replace(
            HEXAGON_698, name="hexagon698_narrowed", max_packet_slots=2
        )
        body = [_salu(i) for i in range(4)]
        # Legal on the real hexagon: all four scalar adds in one packet.
        from repro.core.packing.sda import pack_instructions
        from repro.lint.hazards import lint_packet
        from repro.machine.packet import Packet, packet_is_legal

        wide_packet = Packet(list(body))
        assert len(wide_packet) == 4
        baseline_schema = schema_hash()

        with machine_context(patched):
            # Packer: no packet may exceed the patched ceiling.
            packets = pack_instructions([_salu(i + 10) for i in range(4)])
            assert packets and all(len(p) <= 2 for p in packets)
            # Legality: the four-wide grouping is now illegal.
            assert not packet_is_legal(body)
            # Lint: the pre-built packet trips the slot-ceiling rule.
            diags = lint_packet(wide_packet, 0)
            assert any(d.rule_id == "LINT-PK002" for d in diags)
            # Cache schema: the hash moves with the machine model.
            assert schema_hash() != baseline_schema
        assert schema_hash() == baseline_schema

    def test_profiler_observes_patched_peak(self):
        from repro.machine.profiler import ExecutionProfile

        patched = dataclasses.replace(
            HEXAGON_698, name="hexagon698_slow",
            resource_limits={
                **HEXAGON_698.resource_limits, ResourceClass.VMULT: 1
            },
        )
        profile = ExecutionProfile(cycles=100, packets=10,
                                   issued_instructions=20, macs=1000)
        with machine_context(patched):
            inside = profile.mac_utilization
        assert inside > profile.mac_utilization

    def test_tune_schema_follows_machine(self):
        from repro.tune.db import tune_schema_hash

        baseline = tune_schema_hash()
        patched = dataclasses.replace(
            HEXAGON_698, name="hexagon698_tweak", soft_raw_stall=3
        )
        with machine_context(patched):
            assert tune_schema_hash() != baseline
        assert tune_schema_hash(NARROW_64) != baseline


class TestCrossTargetMatrix:
    @pytest.fixture(scope="class")
    def compiled_by_machine(self):
        graph = build_model("tinybert")
        return {
            name: GCD2Compiler(
                CompilerOptions(machine=name)
            ).compile(graph)
            for name in ALL_MACHINES
        }

    @pytest.mark.parametrize("name", ALL_MACHINES)
    def test_packets_respect_target_limits(self, compiled_by_machine,
                                           name):
        desc = get_machine(name)
        compiled = compiled_by_machine[name]
        assert compiled.machine is desc
        for node in compiled.nodes:
            for packet in node.packets:
                assert len(packet) <= desc.max_packet_slots
                counts = {}
                stores = 0
                for inst in packet:
                    counts[inst.resource] = counts.get(inst.resource, 0) + 1
                    stores += int(inst.spec.is_store)
                assert stores <= desc.max_stores_per_packet
                for resource, count in counts.items():
                    assert count <= desc.limit(resource)

    @pytest.mark.parametrize("name", ALL_MACHINES)
    def test_zoo_models_lint_clean(self, name):
        from repro.lint import Severity, lint_model

        for model in ("mobilenet_v3", "tinybert", "conformer"):
            compiled = GCD2Compiler(
                CompilerOptions(machine=name)
            ).compile(build_model(model))
            report = lint_model(compiled)
            errors = report.at_least(Severity.ERROR)
            assert not errors, (name, model, [d.message for d in errors])

    def test_executor_values_machine_independent(self,
                                                compiled_by_machine):
        """Functional results are identical on every target.

        The machine description parameterizes *cost* (packing, timing,
        layout-panel pricing) but never the ISA semantics, so the
        quantized executor must produce bit-identical outputs whichever
        target the model was compiled for.
        """
        from repro.runtime.executor import QuantizedExecutor

        outputs = {
            name: QuantizedExecutor(
                compiled, seed=0, kernel_mac_limit=1_000_000
            ).run()
            for name, compiled in compiled_by_machine.items()
        }
        reference = outputs["hexagon698"]
        for name in ("narrow64", "wide6"):
            assert set(outputs[name]) == set(reference)
            for key in reference:
                np.testing.assert_array_equal(outputs[name][key],
                                              reference[key])

    def test_narrow_target_prices_slower_than_wide(self,
                                                   compiled_by_machine):
        cycles = {
            name: c.total_cycles
            for name, c in compiled_by_machine.items()
        }
        assert cycles["narrow64"] > cycles["hexagon698"] > cycles["wide6"]

    def test_schedule_cache_isolated_per_target(self, tmp_path):
        from repro.cache.store import DiskStore, ScheduleEntry
        from repro.core.packing import configured_packer
        from repro.cache.fingerprint import kernel_fingerprint
        from repro.machine.pipeline import schedule_cycles

        body = [_vadd(i) for i in range(6)]
        fingerprint = kernel_fingerprint(body, "sda")
        for name in ALL_MACHINES:
            packets = configured_packer("sda", None, get_machine(name))(
                list(body)
            )
            entry = ScheduleEntry(
                body=list(body), packets=packets,
                cycles=schedule_cycles(packets, name),
            )
            assert DiskStore(tmp_path, machine=name).store(
                fingerprint, entry
            )
        for name in ALL_MACHINES:
            store = DiskStore(tmp_path, machine=name)
            loaded = store.load(fingerprint)
            assert loaded is not None
            assert schedule_cycles(loaded.packets, name) == loaded.cycles
        # Three disjoint schema generations, each holding one entry.
        assert len(DiskStore(tmp_path).generations()) == 3
        for name in ALL_MACHINES:
            assert DiskStore(tmp_path, machine=name).entry_count() == 1

    def test_tune_db_isolated_per_target(self, tmp_path):
        from repro.tune.db import TrialDB, TrialRecord, tune_schema_hash

        for name, cycles in (("hexagon698", 100.0), ("narrow64", 900.0)):
            TrialDB(tmp_path, machine=name).append(
                TrialRecord(
                    model="tinybert", fingerprint=f"fp-{name}",
                    config={}, cycles=cycles,
                    schema=tune_schema_hash(name),
                )
            )
        hex_best = TrialDB(tmp_path, machine="hexagon698").best("tinybert")
        narrow_best = TrialDB(tmp_path, machine="narrow64").best("tinybert")
        assert hex_best.fingerprint == "fp-hexagon698"
        assert narrow_best.fingerprint == "fp-narrow64"
        assert TrialDB(tmp_path, machine="wide6").best("tinybert") is None
