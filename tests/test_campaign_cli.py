"""The ``repro campaign {run,status,report}`` command surface."""

import json

import pytest

from repro.cli import main

SPEC_PAYLOAD = {
    "models": ["wdsr_b"],
    "machines": ["hexagon698", "narrow64"],
    "strategies": ["random"],
    "trials": 2,
    "seed": 0,
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_PAYLOAD))
    return str(path)


def _run(spec_path, tmp_path, *extra):
    return main([
        "campaign", "run", spec_path,
        "--cache-dir", str(tmp_path / "cache"), *extra,
    ])


@pytest.mark.slow
class TestCampaignCli:
    def test_run_then_rerun_skips_everything(
        self, spec_path, tmp_path, capsys
    ):
        assert _run(spec_path, tmp_path) == 0
        out = capsys.readouterr().out
        assert "2 cell(s), 0 already finished, 2 to run" in out
        assert out.count(": done") == 2
        assert _run(spec_path, tmp_path) == 0
        out = capsys.readouterr().out
        assert "2 already finished, 0 to run" in out
        assert "2 previously finished" in out

    def test_status_table(self, spec_path, tmp_path, capsys):
        assert _run(spec_path, tmp_path) == 0
        capsys.readouterr()
        assert main([
            "campaign", "status", spec_path,
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "wdsr_b" in out and "narrow64" in out
        assert "2 done, 0 error, 0 interrupted, 0 pending" in out

    def test_status_before_any_run_is_all_pending(
        self, spec_path, tmp_path, capsys
    ):
        assert main([
            "campaign", "status", spec_path,
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        assert "0 done, 0 error, 0 interrupted, 2 pending" in (
            capsys.readouterr().out
        )

    def test_report_writes_both_artifacts_byte_stably(
        self, spec_path, tmp_path, capsys
    ):
        assert _run(spec_path, tmp_path) == 0
        auto = tmp_path / "BENCH_autotune.json"
        camp = tmp_path / "BENCH_campaign.json"

        def report():
            return main([
                "campaign", "report", spec_path,
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(auto),
                "--campaign-output", str(camp),
            ])

        assert report() == 0
        first = (auto.read_bytes(), camp.read_bytes())
        assert report() == 0
        assert (auto.read_bytes(), camp.read_bytes()) == first

        payload = json.loads(auto.read_text())
        assert payload["benchmark"] == "autotune"
        assert payload["source"] == "campaign"
        assert len(payload["rows"]) == 2
        for row in payload["rows"]:
            assert row["best_cycles"] <= row["default_cycles"]
        cross = json.loads(camp.read_text())
        assert cross["benchmark"] == "campaign"
        assert [r["machine"] for r in cross["rows"]] == [
            "hexagon698", "narrow64"
        ]
        assert all(r["status"] == "done" for r in cross["rows"])

    def test_report_before_any_run_is_structured(
        self, spec_path, tmp_path, capsys
    ):
        assert main([
            "campaign", "report", spec_path,
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 1
        assert "no campaign database" in capsys.readouterr().err

    def test_bad_spec_is_structured(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**SPEC_PAYLOAD, "models": ["nope"]}))
        assert main([
            "campaign", "run", str(bad),
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 1
        assert "unknown model" in capsys.readouterr().err
