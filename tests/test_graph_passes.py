"""Unit tests for graph optimization passes.

The key invariant: passes must preserve the reference executor's
output — checked directly on every transformed graph.
"""

import numpy as np
import pytest

from repro.graph import ops
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.graph.passes import (
    constant_fold,
    eliminate_dead_nodes,
    fuse_elementwise,
    run_default_passes,
)
from tests.conftest import random_dag, small_cnn


class TestFuseElementwise:
    def test_relu_fused_into_conv(self):
        b = GraphBuilder("f")
        x = b.input((1, 3, 8, 8), name="x")
        c = b.conv2d(x, 4, name="conv")
        b.relu(c, name="act")
        g = fuse_elementwise(b.build())
        conv_node = [n for n in g if n.op_type == "Conv2D"][0]
        assert conv_node.op.fused_activation == "relu"
        assert not any(n.op_type == "ReLU" for n in g)

    def test_fanout_blocks_fusion(self):
        b = GraphBuilder("f")
        x = b.input((1, 3, 8, 8), name="x")
        c = b.conv2d(x, 4, name="conv")
        r = b.relu(c, name="act")
        b.add(c, r, name="join")  # conv has two consumers
        g = fuse_elementwise(b.build())
        assert any(n.op_type == "ReLU" for n in g)

    def test_only_one_activation_fused(self):
        b = GraphBuilder("f")
        x = b.input((1, 3, 8, 8), name="x")
        c = b.conv2d(x, 4, name="conv")
        r = b.relu(c, name="act1")
        b.sigmoid(r, name="act2")
        g = fuse_elementwise(b.build())
        conv_node = [n for n in g if n.op_type == "Conv2D"][0]
        assert conv_node.op.fused_activation == "relu"
        assert any(n.op_type == "Sigmoid" for n in g)

    def test_fusion_preserves_semantics(self):
        original = small_cnn()
        fused = fuse_elementwise(original)
        assert fused.operator_count() < original.operator_count()
        feed = {"image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))}
        before = ReferenceExecutor(original, seed=7).run(feed)
        after = ReferenceExecutor(fused, seed=7).run(feed)
        for a, b_ in zip(before.values(), after.values()):
            assert np.allclose(a, b_)


class TestConstantFold:
    def test_folds_constant_expression(self):
        b = GraphBuilder("cf")
        c1 = b.constant((4, 4), name="c1")
        c2 = b.constant((4, 4), name="c2")
        s = b.add(c1, c2, name="sum")
        x = b.input((4, 4), name="x")
        b.add(x, s, name="out")
        g = constant_fold(b.build())
        assert not any(n.name == "sum" and n.op_type == "Add" for n in g)
        folded = [n for n in g if n.name == "sum"][0]
        assert folded.op_type == "Constant"

    def test_folding_is_transitive(self):
        b = GraphBuilder("cf")
        c = b.constant((2, 2), name="c")
        r = b.reshape(c, (4,), name="r")
        s = b.reshape(r, (2, 2), name="r2")
        x = b.input((2, 2), name="x")
        b.add(x, s, name="out")
        g = constant_fold(b.build())
        assert all(
            n.op_type != "Reshape" for n in g
        ), [n.op_type for n in g]

    def test_non_constant_not_folded(self):
        g = constant_fold(small_cnn())
        assert any(n.op_type == "Conv2D" for n in g)


class TestDeadNodeElimination:
    def test_removes_unreached_nodes(self):
        b = GraphBuilder("dce")
        x = b.input((1, 4), name="x")
        b.relu(x, name="used")
        g = b.build()
        # Manually mark: both relu and a dangling branch are outputs
        # here, so instead build a graph with a dead sub-branch.
        b2 = GraphBuilder("dce2")
        x2 = b2.input((1, 4), name="x")
        live = b2.relu(x2, name="live")
        g2 = b2.build()
        assert eliminate_dead_nodes(g2).operator_count() == 1

    def test_preserves_live_graph(self):
        g = small_cnn()
        cleaned = eliminate_dead_nodes(g)
        assert cleaned.operator_count() == g.operator_count()


class TestDefaultPipeline:
    @pytest.mark.parametrize("seed", range(4))
    def test_semantics_preserved_on_random_dags(self, seed):
        g = random_dag(seed)
        optimized = run_default_passes(g)
        before = ReferenceExecutor(g, seed=11).run()
        after = ReferenceExecutor(optimized, seed=11).run()
        assert set(before) == set(after)
        for key in before:
            assert np.allclose(before[key], after[key]), key

    def test_never_increases_operator_count(self):
        for seed in range(4):
            g = random_dag(seed)
            assert (
                run_default_passes(g).operator_count()
                <= g.operator_count()
            )
