"""Tests for the selection solvers: DP, exhaustive, local, PBQP, GCD2.

The central invariants:

* chain DP == exhaustive optimum on chains/in-trees (Equation 2 is exact);
* branch-and-bound == raw enumeration (pruning is lossless);
* local >= GCD2(k) >= exhaustive optimum on any graph (cost sandwich);
* every solver returns a complete, legal assignment.
"""

import pytest

from repro.core.chain_dp import is_in_tree, solve_chain
from repro.core.cost import CostModel
from repro.core.exhaustive import solve_exhaustive
from repro.core.global_select import solve_gcd2
from repro.core.local import solve_local
from repro.core.pbqp import solve_pbqp
from repro.core.selection_common import SelectionResult, aggregate_cost
from repro.errors import SelectionError
from repro.graph.builder import GraphBuilder
from tests.conftest import chain_graph, random_dag, small_cnn


def _assert_complete(graph, result: SelectionResult):
    for node in graph:
        assert node.node_id in result.assignment


class TestChainDp:
    @pytest.mark.parametrize("length", [1, 2, 4, 7])
    def test_matches_exhaustive_on_chains(self, length):
        graph = chain_graph(length=length)
        model = CostModel()
        dp = solve_chain(graph, model)
        exact = solve_exhaustive(graph, model)
        assert dp.cost == pytest.approx(exact.cost, rel=1e-9)

    def test_dp_cost_equals_aggregate_of_assignment(self):
        graph = chain_graph(length=5)
        model = CostModel()
        dp = solve_chain(graph, model)
        recomputed = aggregate_cost(graph, model, dp.assignment)
        assert dp.cost == pytest.approx(recomputed, rel=1e-9)

    def test_handles_in_trees(self):
        # Multiple inputs, each feeding exactly one consumer.
        b = GraphBuilder("tree")
        left = b.input((1, 4, 8, 8), name="left")
        right = b.input((1, 4, 8, 8), name="right")
        lc = b.conv2d(left, 4, name="lconv")
        rc = b.conv2d(right, 4, name="rconv")
        b.add(lc, rc, name="join")
        graph = b.build()
        assert is_in_tree(graph)
        model = CostModel()
        dp = solve_chain(graph, model)
        exact = solve_exhaustive(graph, model)
        assert dp.cost == pytest.approx(exact.cost, rel=1e-9)

    def test_deep_chain_does_not_overflow_recursion(self):
        # Regression: _backtrack recursed once per predecessor hop, so
        # chains longer than Python's recursion limit (default 1000)
        # crashed with RecursionError.  ~2000 nodes exercises the
        # iterative worklist rewrite.
        depth = 2000
        b = GraphBuilder("deep_chain")
        x = b.input((1, 8, 8, 8), name="in")
        for i in range(depth):
            x = b.relu(x, name=f"act_{i}")
        graph = b.build()
        result = solve_chain(graph, CostModel())
        # Input + every activation received a plan.
        assert len(result.assignment) == depth + 1
        for node in graph:
            assert node.node_id in result.assignment

    def test_rejects_fan_out(self):
        graph = small_cnn()  # residual: a node has two consumers
        with pytest.raises(SelectionError):
            solve_chain(graph, CostModel())

    def test_linear_time_scaling(self):
        # A 60-op chain solves instantly (would be 3^60 exhaustively).
        graph = chain_graph(length=60)
        result = solve_chain(graph, CostModel())
        _assert_complete(graph, result)


class TestExhaustive:
    @pytest.mark.parametrize("seed", range(4))
    def test_pruning_is_lossless(self, seed):
        graph = random_dag(seed, nodes=5)
        model = CostModel()
        pruned = solve_exhaustive(graph, model, prune=True)
        raw = solve_exhaustive(graph, model, prune=False)
        assert pruned.cost == pytest.approx(raw.cost, rel=1e-9)

    def test_cost_matches_aggregate(self):
        graph = random_dag(1, nodes=5)
        model = CostModel()
        result = solve_exhaustive(graph, model)
        assert result.cost == pytest.approx(
            aggregate_cost(graph, model, result.assignment), rel=1e-9
        )

    def test_subset_search_with_fixed_plans(self):
        graph = chain_graph(length=4)
        model = CostModel()
        nodes = [n.node_id for n in graph]
        first = solve_exhaustive(graph, model, node_ids=nodes[:3])
        second = solve_exhaustive(
            graph, model, node_ids=nodes[3:], fixed=first.assignment
        )
        _assert_complete(graph, second)

    def test_max_expansions_guard(self):
        graph = small_cnn()
        with pytest.raises(SelectionError):
            solve_exhaustive(
                graph, CostModel(), prune=False, max_expansions=100
            )

    def test_empty_selection(self):
        graph = chain_graph(length=2)
        result = solve_exhaustive(graph, CostModel(), node_ids=[])
        assert result.cost == 0.0


class TestLocal:
    def test_picks_per_node_cheapest(self):
        graph = chain_graph(length=4)
        model = CostModel()
        result = solve_local(graph, model)
        for node in graph:
            plan = result.assignment[node.node_id]
            best = min(
                model.plans(node),
                key=lambda p: model.node_cost(graph, node, p),
            )
            assert model.node_cost(graph, node, plan) == pytest.approx(
                model.node_cost(graph, node, best)
            )

    def test_never_beats_global(self):
        for seed in range(4):
            graph = random_dag(seed, nodes=6)
            model = CostModel()
            local = solve_local(graph, model)
            exact = solve_exhaustive(graph, model)
            assert local.cost >= exact.cost - 1e-9


class TestPbqp:
    @pytest.mark.parametrize("length", [2, 4, 6])
    def test_exact_on_chains(self, length):
        # Chains reduce entirely via RI: PBQP is exact there.
        graph = chain_graph(length=length)
        model = CostModel()
        pbqp = solve_pbqp(graph, model)
        exact = solve_exhaustive(graph, model)
        assert pbqp.cost == pytest.approx(exact.cost, rel=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_near_optimal_on_dags(self, seed):
        graph = random_dag(seed, nodes=6)
        model = CostModel()
        pbqp = solve_pbqp(graph, model)
        exact = solve_exhaustive(graph, model)
        local = solve_local(graph, model)
        assert pbqp.cost >= exact.cost - 1e-9
        assert pbqp.cost <= local.cost + 1e-9

    def test_complete_assignment(self):
        graph = small_cnn()
        result = solve_pbqp(graph, CostModel())
        _assert_complete(graph, result)


class TestGcd2:
    @pytest.mark.parametrize("seed", range(4))
    def test_cost_sandwich(self, seed):
        graph = random_dag(seed, nodes=7)
        model = CostModel()
        gcd2 = solve_gcd2(graph, model, max_operators=13)
        local = solve_local(graph, model)
        exact = solve_exhaustive(graph, model)
        assert exact.cost - 1e-9 <= gcd2.cost <= local.cost + 1e-9

    def test_uses_dp_on_chains(self):
        graph = chain_graph(length=5)
        result = solve_gcd2(graph, CostModel())
        assert "chain-dp" in result.solver
        exact = solve_exhaustive(graph, CostModel())
        assert result.cost == pytest.approx(exact.cost, rel=1e-9)

    def test_partition_budget_names_solver(self):
        graph = small_cnn()
        result = solve_gcd2(graph, CostModel(), max_operators=5)
        assert "gcd2(5)" in result.solver
        _assert_complete(graph, result)

    def test_matches_global_on_small_graphs(self):
        # The Figure 10 observation: GCD2(13) ~= the global optimum.
        graph = small_cnn()
        model = CostModel()
        gcd2 = solve_gcd2(graph, model, max_operators=13)
        exact = solve_exhaustive(graph, model)
        assert gcd2.cost <= exact.cost * 1.05


class TestSelectionResult:
    def test_plan_for_missing_raises(self):
        result = SelectionResult({}, 0.0, "test")
        with pytest.raises(SelectionError):
            result.plan_for(0)

    def test_aggregate_cost_requires_complete_assignment(self):
        graph = chain_graph(length=2)
        with pytest.raises(SelectionError):
            aggregate_cost(graph, CostModel(), {})
