"""Unit tests for the register dataflow analyses (LINT-DF*)."""

import numpy as np

from repro.codegen.program import build_matmul_program
from repro.isa.instructions import Instruction, Opcode
from repro.lint import (
    Severity,
    def_use_chains,
    lint_dataflow,
    live_out,
    reaching_definition,
)


def _ids(diagnostics):
    return [d.rule_id for d in diagnostics]


class TestChains:
    def test_def_use_positions(self):
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(0,)),
            Instruction(Opcode.VADD, dests=("v_b",), srcs=("v_a", "v_a")),
        ]
        chains = def_use_chains(program)
        assert chains.defs["v_a"] == [0]
        assert chains.uses["v_a"] == [1, 1]
        assert chains.defs["v_b"] == [1]
        assert chains.registers == {"v_a", "v_b"}

    def test_implicit_accumulator_counts_as_use(self):
        acc = Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        chains = def_use_chains([acc])
        assert chains.uses["v_acc"] == [0]
        assert chains.defs["v_acc"] == [0]

    def test_reaching_definition_skips_same_position(self):
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_acc",), imms=(0,)),
            Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",)),
        ]
        chains = def_use_chains(program)
        # The vrmpy's own write does not satisfy its read; the vsplat's
        # does.
        assert reaching_definition(chains, "v_acc", 1) == 0
        assert reaching_definition(chains, "v_in", 1) == -1

    def test_live_out_reports_final_unread_defs(self):
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(0,)),
            Instruction(Opcode.VADD, dests=("v_b",), srcs=("v_a", "v_a")),
        ]
        assert live_out(program) == {"v_b": 1}


class TestStraightLine:
    def test_clean_program_has_no_errors(self):
        rng = np.random.default_rng(0)
        b = rng.integers(-8, 8, (8, 4), dtype=np.int8)
        program = build_matmul_program((4, 8), b)
        diagnostics = lint_dataflow(program.instructions)
        assert not [d for d in diagnostics if d.severity >= Severity.WARNING]

    def test_uninitialized_read_flagged(self):
        program = [
            Instruction(Opcode.VADD, dests=("v_b",), srcs=("v_a", "v_a")),
        ]
        diagnostics = lint_dataflow(program)
        assert "LINT-DF001" in _ids(diagnostics)
        (df001,) = [d for d in diagnostics if d.rule_id == "LINT-DF001"]
        assert df001.details["register"] == "v_a"
        assert df001.location.instruction_index == 0

    def test_implicit_accumulator_read_needs_init(self):
        # vrmpy accumulate form with no prior accumulator definition:
        # the implicit read is uninitialized.
        program = [
            Instruction(Opcode.VLOAD, dests=("v_in",), imms=(0x1000,)),
            Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",)),
        ]
        diagnostics = lint_dataflow(program)
        assert "LINT-DF001" in _ids(diagnostics)

    def test_initialized_accumulator_is_clean(self):
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_acc",), imms=(0,)),
            Instruction(Opcode.VLOAD, dests=("v_in",), imms=(0x1000,)),
            Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",)),
            Instruction(Opcode.VSTORE, srcs=("v_acc",), imms=(0x40000,)),
        ]
        assert not lint_dataflow(program)

    def test_dead_write_flagged(self):
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(1,)),
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(2,)),
            Instruction(Opcode.VSTORE, srcs=("v_a",), imms=(0x40000,)),
        ]
        diagnostics = lint_dataflow(program)
        assert "LINT-DF002" in _ids(diagnostics)

    def test_read_at_overwrite_position_is_not_dead(self):
        # v_a is read by the same instruction that overwrites it: the
        # machine reads before writing, so the first write is observed.
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(1,)),
            Instruction(Opcode.VADD, dests=("v_a",), srcs=("v_a", "v_a")),
            Instruction(Opcode.VSTORE, srcs=("v_a",), imms=(0x40000,)),
        ]
        assert "LINT-DF002" not in _ids(lint_dataflow(program))

    def test_paired_output_byproduct_not_a_dead_write(self):
        # vshuff's never-read high half is rewritten each round: the
        # hardware writes it unconditionally, so no DF002 — DF003
        # reports the register once at info.
        program = [
            Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(1,)),
            Instruction(Opcode.VSPLAT, dests=("v_b",), imms=(2,)),
            Instruction(
                Opcode.VSHUFF, dests=("v_lo", "v_hi"), srcs=("v_a", "v_b")
            ),
            Instruction(
                Opcode.VSHUFF, dests=("v_lo2", "v_hi"), srcs=("v_lo", "v_a")
            ),
            Instruction(Opcode.VSTORE, srcs=("v_lo2",), imms=(0x40000,)),
        ]
        diagnostics = lint_dataflow(program)
        assert "LINT-DF002" not in _ids(diagnostics)
        infos = [d for d in diagnostics if d.rule_id == "LINT-DF003"]
        assert any(d.details["register"] == "v_hi" for d in infos)

    def test_duplicate_dest_flagged(self):
        program = [
            Instruction(
                Opcode.VSHUFF, dests=("v_x", "v_x"), srcs=("v_a", "v_b")
            ),
        ]
        diagnostics = lint_dataflow(program)
        assert "LINT-DF004" in _ids(diagnostics)

    def test_live_in_suppresses_uninitialized_read(self):
        program = [
            Instruction(Opcode.VADD, dests=("v_b",), srcs=("v_a", "v_a")),
            Instruction(Opcode.VSTORE, srcs=("v_b",), imms=(0x40000,)),
        ]
        assert not lint_dataflow(program, live_in=frozenset({"v_a"}))


class TestLoopBody:
    def test_scalar_registers_are_implicit_live_in(self):
        body = [
            Instruction(Opcode.VLOAD, dests=("v_in",), srcs=("r_a",)),
            Instruction(Opcode.VSTORE, srcs=("v_in", "r_out")),
            Instruction(Opcode.ADD, dests=("r_a",), srcs=("r_a",), imms=(4,)),
        ]
        assert not [
            d
            for d in lint_dataflow(body, loop_body=True)
            if d.severity >= Severity.WARNING
        ]

    def test_loop_carried_vector_read_allowed(self):
        # The accumulator is read before (textually) being defined; the
        # value arrives from the previous iteration.
        body = [
            Instruction(Opcode.VADD, dests=("v_acc",), srcs=("v_acc", "v_x")),
            Instruction(Opcode.VLOAD, dests=("v_x",), srcs=("r_a",)),
        ]
        diagnostics = lint_dataflow(body, loop_body=True)
        assert "LINT-DF001" not in _ids(diagnostics)

    def test_straight_line_mode_rejects_the_same_read(self):
        body = [
            Instruction(Opcode.VADD, dests=("v_acc",), srcs=("v_acc", "v_x")),
            Instruction(Opcode.VLOAD, dests=("v_x",), srcs=("r_a",)),
        ]
        assert "LINT-DF001" in _ids(lint_dataflow(body))

    def test_vector_with_no_definition_still_flagged_in_loop(self):
        body = [
            Instruction(Opcode.VSTORE, srcs=("v_ghost", "r_out")),
        ]
        assert "LINT-DF001" in _ids(lint_dataflow(body, loop_body=True))
