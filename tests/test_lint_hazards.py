"""Tests for packet hazards, schedule consistency, stall estimation and
the memory-map rules."""

import math

import numpy as np
import pytest

from repro.codegen.program import (
    INPUT_BASE,
    OUTPUT_BASE,
    build_matmul_program,
)
from repro.core.packing.sda import pack_best
from repro.isa.instructions import Instruction, Opcode
from repro.lint import (
    Region,
    Severity,
    StaticAnalyzer,
    estimate_stalls,
    lint_cycle_estimate,
    lint_memory_map,
    lint_packet,
    lint_schedule_consistency,
    matmul_regions,
)
from repro.machine.packet import Packet
from repro.machine.pipeline import schedule_cycles


def _ids(diagnostics):
    return [d.rule_id for d in diagnostics]


def _packet(*instructions):
    """A packet with validation bypassed, the way a fault corrupts one."""
    packet = Packet([])
    packet.instructions.extend(instructions)
    return packet


class TestPacketRules:
    def test_legal_packet_is_clean(self):
        packet = Packet(
            [
                Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_a",)),
                Instruction(Opcode.ADD, dests=("r_b",), srcs=("r_b",)),
            ]
        )
        assert not lint_packet(packet, 0)

    def test_hard_pair_copacked_flagged(self):
        producer = Instruction(
            Opcode.VMPY, dests=("v_p",), srcs=("v_a", "v_b")
        )
        consumer = Instruction(
            Opcode.VADD, dests=("v_c",), srcs=("v_p", "v_p")
        )
        diagnostics = lint_packet(_packet(producer, consumer), 0)
        assert "LINT-PK001" in _ids(diagnostics)

    def test_slot_oversubscription_flagged(self):
        nops = [Instruction(Opcode.NOP) for _ in range(5)]
        diagnostics = lint_packet(_packet(*nops), 0)
        assert "LINT-PK002" in _ids(diagnostics)

    def test_resource_oversubscription_flagged(self):
        shifts = [
            Instruction(Opcode.VASR, dests=(f"v_{i}",), srcs=("v_x",))
            for i in range(2)
        ]
        diagnostics = lint_packet(_packet(*shifts), 0)
        assert "LINT-PK003" in _ids(diagnostics)

    def test_multiple_stores_flagged(self):
        stores = [
            Instruction(Opcode.VSTORE, srcs=(f"v_{i}",), imms=(i,))
            for i in range(2)
        ]
        diagnostics = lint_packet(_packet(*stores), 0)
        assert "LINT-PK004" in _ids(diagnostics)

    def test_waw_in_packet_flagged(self):
        first = Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(1,))
        second = Instruction(Opcode.VSPLAT, dests=("v_a",), imms=(2,))
        diagnostics = lint_packet(_packet(first, second), 0)
        assert "LINT-PK005" in _ids(diagnostics)


class TestScheduleConsistency:
    def _body(self):
        return [
            Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_a",)),
            Instruction(Opcode.VADD, dests=("v_b",), srcs=("v_a", "v_a")),
            Instruction(Opcode.VSTORE, srcs=("v_b", "r_out")),
        ]

    def test_faithful_schedule_is_clean(self):
        body = self._body()
        packets = [Packet([inst]) for inst in body]
        assert not lint_schedule_consistency(packets, body)

    def test_dropped_instruction_flagged(self):
        body = self._body()
        packets = [Packet([inst]) for inst in body[:-1]]
        diagnostics = lint_schedule_consistency(packets, body)
        assert "LINT-SC001" in _ids(diagnostics)

    def test_duplicate_instruction_flagged(self):
        body = self._body()
        packets = [Packet([inst]) for inst in body]
        packets.append(packets[0])
        diagnostics = lint_schedule_consistency(packets, body)
        assert "LINT-SC002" in _ids(diagnostics)

    def test_foreign_instruction_flagged(self):
        body = self._body()
        packets = [Packet([inst]) for inst in body]
        packets.append(Packet([Instruction(Opcode.NOP)]))
        diagnostics = lint_schedule_consistency(packets, body)
        assert "LINT-SC005" in _ids(diagnostics)

    def test_inverted_dependency_flagged(self):
        body = self._body()
        packets = [Packet([inst]) for inst in reversed(body)]
        diagnostics = lint_schedule_consistency(packets, body)
        assert "LINT-SC004" in _ids(diagnostics)

    def test_cycle_estimate_rules(self):
        assert not lint_cycle_estimate(12.5)
        assert not lint_cycle_estimate(0)
        for bad in (float("nan"), float("inf"), -1.0, None, "x"):
            assert "LINT-SC003" in _ids(lint_cycle_estimate(bad))


class TestStallEstimator:
    def test_agrees_with_pipeline_on_matmul_programs(self):
        rng = np.random.default_rng(0)
        for m, k, n in ((4, 8, 4), (16, 32, 8), (64, 16, 6)):
            b = rng.integers(-8, 8, (k, n), dtype=np.int8)
            program = build_matmul_program((m, k), b)
            packets = pack_best(program.instructions)
            estimate = estimate_stalls(packets)
            assert estimate.total_cycles == schedule_cycles(packets)

    def test_agrees_with_pipeline_on_compiled_kernels(self):
        from repro.compiler import CompilerOptions, compile_model
        from repro.models import build_model

        for packing in ("sda", "soft_to_hard", "soft_to_none", "list"):
            compiled = compile_model(
                build_model("fst"),
                CompilerOptions(packing=packing),
            )
            for cn in compiled.nodes:
                estimate = estimate_stalls(cn.packets)
                assert estimate.total_cycles == schedule_cycles(
                    cn.packets
                ), (packing, cn.node.name)

    def test_soft_chain_counts_stalls(self):
        load = Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_a",))
        use = Instruction(Opcode.VSTORE, srcs=("v_a", "r_out"))
        estimate = estimate_stalls([_packet(load, use)])
        assert estimate.soft_raw_pairs == 1
        assert estimate.stall_cycles == 1
        assert estimate.total_cycles == 3 + 1  # vload latency + 1 stall

    def test_war_soft_pair_is_free(self):
        read = Instruction(Opcode.VSTORE, srcs=("v_a", "r_out"))
        overwrite = Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_b",))
        estimate = estimate_stalls([_packet(read, overwrite)])
        assert estimate.soft_raw_pairs == 0
        assert estimate.stall_cycles == 0

    def test_empty_packet_costs_one_cycle(self):
        estimate = estimate_stalls([Packet([])])
        assert estimate.total_cycles == 1
        assert estimate.total_cycles == schedule_cycles([Packet([])])

    def test_stall_fraction(self):
        load = Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_a",))
        use = Instruction(Opcode.VSTORE, srcs=("v_a", "r_out"))
        estimate = estimate_stalls([_packet(load, use)])
        assert estimate.stall_fraction == pytest.approx(0.25)

    def test_agrees_with_pipeline_on_implicit_accumulator_raw(self):
        # Regression: a RAW edge through a vrmpy implicit accumulator
        # read must be priced identically by the estimator and the
        # pipeline model even on a corrupted (legality-bypassed) packet.
        load = Instruction(Opcode.VLOAD, dests=("v_acc",), srcs=("r_a",))
        mac = Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_in",))
        packets = [_packet(load, mac)]
        estimate = estimate_stalls(packets)
        assert estimate.soft_raw_pairs == 1
        assert estimate.stall_cycles == 1
        assert estimate.total_cycles == schedule_cycles(packets)

    def test_agrees_with_pipeline_on_long_corrupted_chain(self):
        import sys

        length = sys.getrecursionlimit() + 100
        chain = [
            Instruction(Opcode.ADD, dests=(f"r{i + 1}",), srcs=(f"r{i}",))
            for i in range(length)
        ]
        packets = [_packet(*chain)]
        estimate = estimate_stalls(packets)
        assert estimate.stall_cycles == length - 1
        assert estimate.total_cycles == schedule_cycles(packets)


class TestMemoryMap:
    def test_matmul_program_respects_its_regions(self):
        rng = np.random.default_rng(1)
        b = rng.integers(-8, 8, (16, 4), dtype=np.int8)
        program = build_matmul_program((8, 16), b)
        diagnostics = lint_memory_map(
            program.instructions, matmul_regions(program)
        )
        assert not diagnostics

    def test_access_outside_regions_flagged(self):
        regions = [Region("output", OUTPUT_BASE, 256)]
        program = [
            Instruction(Opcode.VLOAD, dests=("v_a",), imms=(0xDEAD000,)),
        ]
        diagnostics = lint_memory_map(program, regions)
        assert _ids(diagnostics) == ["LINT-MM001"]

    def test_access_overhanging_region_end_flagged(self):
        # The access starts inside but runs past the region's end.
        regions = [Region("output", OUTPUT_BASE, 130)]
        program = [
            Instruction(
                Opcode.VSTORE, srcs=("v_a",), imms=(OUTPUT_BASE + 64,)
            ),
        ]
        diagnostics = lint_memory_map(program, regions)
        assert "LINT-MM001" in _ids(diagnostics)

    def test_store_into_readonly_region_flagged(self):
        regions = [Region("input", INPUT_BASE, 1024, writable=False)]
        program = [
            Instruction(Opcode.VSTORE, srcs=("v_a",), imms=(INPUT_BASE,)),
        ]
        diagnostics = lint_memory_map(program, regions)
        assert "LINT-MM002" in _ids(diagnostics)

    def test_partially_overlapping_stores_flagged(self):
        regions = [Region("output", OUTPUT_BASE, 4096)]
        program = [
            Instruction(
                Opcode.VSTORE, srcs=("v_a",), imms=(OUTPUT_BASE,)
            ),
            Instruction(
                Opcode.VSTORE, srcs=("v_b",), imms=(OUTPUT_BASE + 64,)
            ),
        ]
        diagnostics = lint_memory_map(program, regions)
        assert "LINT-MM003" in _ids(diagnostics)

    def test_identical_slot_reuse_allowed(self):
        # Spill slots are stored to repeatedly; identical ranges are a
        # feature, not an overlap.
        regions = [Region("spill", 0x80000, 4096)]
        program = [
            Instruction(Opcode.VSTORE, srcs=("v_a",), imms=(0x80000,)),
            Instruction(Opcode.VSTORE, srcs=("v_b",), imms=(0x80000,)),
        ]
        diagnostics = lint_memory_map(program, regions)
        assert "LINT-MM003" not in _ids(diagnostics)

    def test_dynamic_addresses_skipped(self):
        regions = [Region("output", OUTPUT_BASE, 128)]
        program = [
            Instruction(
                Opcode.VLOAD, dests=("v_a",), srcs=("r_base",), imms=(0,)
            ),
        ]
        assert not lint_memory_map(program, regions)


class TestAnalyzerFacade:
    def test_lint_matmul_program_clean(self):
        rng = np.random.default_rng(2)
        b = rng.integers(-8, 8, (8, 4), dtype=np.int8)
        program = build_matmul_program((4, 8), b)
        report = StaticAnalyzer().lint_matmul_program(program)
        assert not report.at_least(Severity.WARNING)

    def test_schedule_report_carries_metrics(self):
        body = [
            Instruction(Opcode.VLOAD, dests=("v_a",), srcs=("r_a",)),
            Instruction(Opcode.VSTORE, srcs=("v_a", "r_out")),
        ]
        packets = pack_best(body)
        report = StaticAnalyzer().lint_schedule(packets, body)
        assert report.metrics["estimated_cycles"] == schedule_cycles(
            packets
        )
        assert "LINT-ST001" in report.rule_ids()
