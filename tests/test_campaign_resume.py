"""Crash-safe campaign resume: no duplicate trials, byte-stable report.

Two interruption vehicles, mirroring tests/test_serve_restart.py:

* a fault hook raising ``KeyboardInterrupt`` (a ``BaseException``, so
  it escapes the per-cell error isolation exactly like a crash);
* a scripted subprocess killed with SIGKILL mid-campaign — no atexit
  hooks, no flush, torn files and all.

After either interruption, re-running the campaign must claim only the
unfinished cells, leave zero duplicate trial records in the shared
trial DB, and produce a ``campaign report`` byte-identical to one from
a never-interrupted run.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignDB,
    CampaignSpec,
    campaign_report,
    default_campaign_dir,
    run_campaign,
)
from repro.tune import default_tune_dir

SPEC_PAYLOAD = {
    "models": ["wdsr_b"],
    "machines": ["hexagon698", "narrow64"],
    "strategies": ["random"],
    "trials": 2,
    "seed": 0,
}

SPEC = CampaignSpec.from_payload(SPEC_PAYLOAD)


def shared_lines(cache_dir):
    path = default_tune_dir(cache_dir) / "trials.jsonl"
    if not path.is_file():
        return []
    return [l for l in path.read_text().splitlines() if l.strip()]


def report_bytes(cache_dir, tmp_path, tag):
    auto = tmp_path / f"auto_{tag}.json"
    camp = tmp_path / f"camp_{tag}.json"
    campaign_report(
        SPEC,
        cache_dir=cache_dir,
        autotune_path=str(auto),
        campaign_path=str(camp),
    )
    return auto.read_bytes(), camp.read_bytes()


@pytest.mark.slow
class TestFaultHookResume:
    def test_interrupt_resume_no_duplicates_identical_report(
        self, tmp_path
    ):
        cache = str(tmp_path / "cache")
        seen = []

        def crash_on_second_cell(stage, cell_id):
            if stage == "claim":
                seen.append(cell_id)
                if len(seen) == 2:
                    raise KeyboardInterrupt  # simulated crash

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                SPEC, cache_dir=cache, fault_hook=crash_on_second_cell
            )
        db = CampaignDB(default_campaign_dir(cache, SPEC.fingerprint))
        states = db.cell_states(SPEC)
        assert states[seen[0]]["status"] == "done"
        # The interrupted cell is mid-flight: running, claimable.
        assert states[seen[1]]["status"] == "running"
        assert db.claimable(SPEC) == [seen[1]]

        summary = run_campaign(SPEC, cache_dir=cache)
        assert summary["claimed"] == 1
        assert summary["done"] == 1
        assert summary["skipped"] == 1

        lines = shared_lines(cache)
        assert len(lines) == len(set(lines)), "duplicate trial records"

        # Byte-identical to a never-interrupted campaign's report.
        clean_cache = str(tmp_path / "clean")
        run_campaign(SPEC, cache_dir=clean_cache)
        assert len(shared_lines(clean_cache)) == len(lines)
        resumed = report_bytes(cache, tmp_path, "resumed")
        clean = report_bytes(clean_cache, tmp_path, "clean")
        assert resumed[0] == clean[0], "autotune artefact differs"
        # Wall buckets may differ across runs; the campaign table must
        # still be byte-stable across *re-reports* of the same DB.
        assert resumed == report_bytes(cache, tmp_path, "resumed2")

    def test_crash_mid_publish_still_no_duplicates(self, tmp_path):
        cache = str(tmp_path / "cache")

        def crash_after_publish(stage, cell_id):
            if stage == "published":
                # Trials are durable but the done event never lands —
                # the worst window for a duplicate-on-resume bug.
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                SPEC, cache_dir=cache, fault_hook=crash_after_publish
            )
        published = shared_lines(cache)
        assert published, "cell published before the crash"

        summary = run_campaign(SPEC, cache_dir=cache)
        assert summary["claimed"] == 2  # neither cell reached done
        lines = shared_lines(cache)
        assert len(lines) == len(set(lines)), "duplicate trial records"
        assert set(published) <= set(lines)


RUNNER_SCRIPT = """
import json, sys
from repro.campaign import CampaignSpec, run_campaign

spec = CampaignSpec.load(sys.argv[1])
run_campaign(
    spec,
    cache_dir=sys.argv[2],
    progress=lambda message: print(message, flush=True),
)
print("CAMPAIGN-COMPLETE", flush=True)
"""


def _launch(tmp_path, spec_path, cache_dir):
    script = tmp_path / "campaign_script.py"
    script.write_text(RUNNER_SCRIPT)
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(__file__)), "src"
    )
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(script), str(spec_path), cache_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


@pytest.mark.slow
class TestSigkillResume:
    def test_sigkill_then_resume_finishes_exactly_the_rest(
        self, tmp_path
    ):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_PAYLOAD))
        cache = str(tmp_path / "cache")

        proc = _launch(tmp_path, spec_path, cache)
        try:
            # Wait for the first cell to finish, then crash uncleanly.
            while True:
                line = proc.stdout.readline()
                if not line:
                    raise AssertionError(
                        f"campaign died early: {proc.stderr.read()}"
                    )
                if ": done" in line:
                    break
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        db = CampaignDB(default_campaign_dir(cache, SPEC.fingerprint))
        finished_before = [
            cell_id
            for cell_id, state in db.cell_states(SPEC).items()
            if state["status"] == "done"
        ]
        assert finished_before, "first cell should have completed"
        before_lines = shared_lines(cache)

        summary = run_campaign(SPEC, cache_dir=cache)
        assert summary["skipped"] == len(finished_before)
        assert summary["claimed"] == 2 - len(finished_before)
        assert summary["error"] == 0

        lines = shared_lines(cache)
        assert len(lines) == len(set(lines)), "duplicate trial records"
        assert set(before_lines) <= set(lines)

        # Report parity with a never-killed campaign.
        clean_cache = str(tmp_path / "clean")
        run_campaign(SPEC, cache_dir=clean_cache)
        resumed_auto, _ = report_bytes(cache, tmp_path, "resumed")
        clean_auto, _ = report_bytes(clean_cache, tmp_path, "clean")
        assert resumed_auto == clean_auto
