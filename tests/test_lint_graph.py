"""Tests for the graph/selection/lowering lint rules (LINT-GR*, LINT-LW*)."""

import pytest

from repro.compiler import CompilerOptions, compile_model
from repro.core.cost import CostModel
from repro.core.plans import ExecutionPlan
from repro.isa.instructions import Instruction, Opcode
from repro.lint import (
    lint_kernel_structure,
    lint_quant_params,
    lint_selection,
)
from repro.models import build_model
from repro.quant.quantize import QuantParams
from repro.tensor.layout import Layout


def _ids(diagnostics):
    return [d.rule_id for d in diagnostics]


@pytest.fixture(scope="module")
def compiled():
    return compile_model(build_model("fst"), CompilerOptions())


class _FreeTransforms(CostModel):
    """A broken cost model that charges nothing for layout changes."""

    def edge_cost(self, *args, **kwargs):
        return 0.0


class TestSelectionRules:
    def test_real_selection_is_clean(self, compiled):
        model = CostModel()
        diagnostics = lint_selection(
            compiled.graph, compiled.selection, model
        )
        assert not diagnostics

    def test_uncosted_layout_change_flagged(self, compiled):
        # fst's selection contains layout-changing non-constant edges;
        # under a cost model that charges them nothing, each becomes a
        # GR001 finding.
        diagnostics = lint_selection(
            compiled.graph, compiled.selection, _FreeTransforms()
        )
        assert "LINT-GR001" in _ids(diagnostics)

    def test_instruction_layout_mismatch_flagged(self, compiled):
        selection = compiled.selection
        victim = next(
            node_id
            for node_id, plan in selection.assignment.items()
            if plan.instruction is Opcode.VRMPY
        )
        original = selection.assignment[victim]
        # vrmpy consumes 4-column data; pair it with 1-column.
        selection.assignment[victim] = ExecutionPlan(
            instruction=Opcode.VRMPY, layout=Layout.COL1
        )
        try:
            diagnostics = lint_selection(
                compiled.graph, selection, CostModel()
            )
            assert "LINT-GR002" in _ids(diagnostics)
        finally:
            selection.assignment[victim] = original


class TestKernelStructure:
    def _body(self):
        return [
            Instruction(Opcode.VLOAD, dests=("v_in",), srcs=("r_a",)),
            Instruction(Opcode.VSTORE, srcs=("v_in", "r_out")),
        ]

    def test_wellformed_kernel_is_clean(self):
        assert not lint_kernel_structure(self._body(), 4, "node")

    def test_empty_body_flagged(self):
        diagnostics = lint_kernel_structure([], 4, "node")
        assert "LINT-LW001" in _ids(diagnostics)

    @pytest.mark.parametrize("trips", [0, -3, 1.5, None, True, "8"])
    def test_bad_trip_count_flagged(self, trips):
        diagnostics = lint_kernel_structure(self._body(), trips, "node")
        assert "LINT-LW002" in _ids(diagnostics)

    @pytest.mark.parametrize("shift", [-1, 32, 40])
    def test_out_of_range_vasr_shift_flagged(self, shift):
        body = self._body() + [
            Instruction(Opcode.VASR, dests=("v_q",), srcs=("v_in",),
                        imms=(shift,)),
        ]
        diagnostics = lint_kernel_structure(body, 4, "node")
        assert "LINT-GR003" in _ids(diagnostics)

    @pytest.mark.parametrize("shift", [0, 8, 31])
    def test_in_range_vasr_shift_clean(self, shift):
        body = self._body() + [
            Instruction(Opcode.VASR, dests=("v_q",), srcs=("v_in",),
                        imms=(shift,)),
        ]
        assert "LINT-GR003" not in _ids(lint_kernel_structure(body, 4, "n"))


class TestQuantParams:
    def test_valid_params_clean(self):
        assert not lint_quant_params(QuantParams(scale=0.05, zero_point=3))

    @pytest.mark.parametrize(
        "scale", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_bad_scale_flagged(self, scale):
        diagnostics = lint_quant_params(QuantParams(scale=scale))
        assert _ids(diagnostics) == ["LINT-GR004"]

    @pytest.mark.parametrize("zero", [300, -200, 0.5, True])
    def test_bad_zero_point_flagged(self, zero):
        diagnostics = lint_quant_params(
            QuantParams(scale=0.1, zero_point=zero)
        )
        assert _ids(diagnostics) == ["LINT-GR004"]
