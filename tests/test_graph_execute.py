"""Unit tests for the float reference executor."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from tests.conftest import random_dag, small_cnn


class TestBasicExecution:
    def test_small_cnn_runs(self):
        outputs = ReferenceExecutor(small_cnn()).run()
        (value,) = outputs.values()
        assert value.shape == (1, 4)
        assert value.sum() == pytest.approx(1.0)  # softmax

    def test_deterministic_given_seed(self):
        a = ReferenceExecutor(small_cnn(), seed=3).run()
        b = ReferenceExecutor(small_cnn(), seed=3).run()
        for key in a:
            assert np.allclose(a[key], b[key])

    def test_different_seeds_differ(self):
        a = ReferenceExecutor(small_cnn(), seed=1).run()
        b = ReferenceExecutor(small_cnn(), seed=2).run()
        assert any(not np.allclose(a[k], b[k]) for k in a)

    def test_feed_overrides_input(self):
        g = small_cnn()
        feed = np.zeros((1, 3, 16, 16))
        a = ReferenceExecutor(g).run({"image": feed})
        b = ReferenceExecutor(g).run({"image": feed + 1.0})
        assert any(not np.allclose(a[k], b[k]) for k in a)

    def test_feed_shape_checked(self):
        with pytest.raises(GraphError):
            ReferenceExecutor(small_cnn()).run(
                {"image": np.zeros((1, 3, 4, 4))}
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_execute_and_match_inference(self, seed):
        g = random_dag(seed)
        outputs = ReferenceExecutor(g).run()
        by_name = {n.name: n for n in g.output_nodes()}
        for name, value in outputs.items():
            assert tuple(value.shape) == by_name[name].output_shape


class TestOperatorSemantics:
    def test_conv2d_against_manual(self):
        b = GraphBuilder("conv")
        x = b.input((1, 1, 4, 4), name="x")
        b.conv2d(x, 1, kernel=3, padding=1, name="c")
        g = b.build()
        ex = ReferenceExecutor(g, seed=0)
        image = np.random.default_rng(1).normal(size=(1, 1, 4, 4))
        out = ex.run({"x": image})["c"]
        node = [n for n in g if n.name == "c"][0]
        w = ex._weight(node, "w0", (9, 1)).reshape(3, 3)
        padded = np.pad(image[0, 0], 1)
        manual = np.zeros((4, 4))
        for i in range(4):
            for j in range(4):
                # im2col orders patches channel-major then kh, kw.
                manual[i, j] = (padded[i:i + 3, j:j + 3] * w).sum()
        assert np.allclose(out[0, 0], manual)

    def test_depthwise_independent_channels(self):
        b = GraphBuilder("dw")
        x = b.input((1, 2, 4, 4), name="x")
        b.depthwise_conv2d(x, kernel=3, name="d")
        g = b.build()
        ex = ReferenceExecutor(g)
        image = np.zeros((1, 2, 4, 4))
        image[0, 0] = 1.0  # only channel 0 is non-zero
        out = ex.run({"x": image})["d"]
        # Channel 1's filter never sees channel 0's data.
        assert np.allclose(out[0, 1], 0.0)
        assert not np.allclose(out[0, 0], 0.0)

    def test_max_pool(self):
        b = GraphBuilder("pool")
        x = b.input((1, 1, 4, 4), name="x")
        b.max_pool(x, kernel=2, stride=2, name="p")
        g = b.build()
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = ReferenceExecutor(g).run({"x": image})["p"]
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_softmax_normalizes(self):
        b = GraphBuilder("softmax")
        x = b.input((2, 8), name="x")
        b.softmax(x, name="s")
        out = ReferenceExecutor(b.build()).run(
            {"x": np.random.default_rng(0).normal(size=(2, 8))}
        )["s"]
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_layer_norm_standardizes(self):
        b = GraphBuilder("ln")
        x = b.input((2, 16), name="x")
        b.layer_norm(x, name="n")
        out = ReferenceExecutor(b.build()).run(
            {"x": np.random.default_rng(0).normal(2.0, 3.0, size=(2, 16))}
        )["n"]
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_depth_to_space_rearranges(self):
        b = GraphBuilder("d2s")
        x = b.input((1, 4, 2, 2), name="x")
        b.depth_to_space(x, block=2, name="d")
        image = np.arange(16, dtype=float).reshape(1, 4, 2, 2)
        out = ReferenceExecutor(b.build()).run({"x": image})["d"]
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == image[0, 0, 0, 0]
        assert out[0, 0, 0, 1] == image[0, 1, 0, 0]

    def test_attention_style_matmul(self):
        b = GraphBuilder("attn")
        q = b.input((1, 2, 4, 8), name="q")
        k = b.input((1, 2, 8, 4), name="k")
        b.matmul(q, k, name="scores")
        qv = np.random.default_rng(0).normal(size=(1, 2, 4, 8))
        kv = np.random.default_rng(1).normal(size=(1, 2, 8, 4))
        out = ReferenceExecutor(b.build()).run({"q": qv, "k": kv})["scores"]
        assert np.allclose(out, qv @ kv)

    def test_transpose_conv_shape_and_value(self):
        b = GraphBuilder("tc")
        x = b.input((1, 1, 2, 2), name="x")
        b.transpose_conv2d(x, 1, kernel=2, stride=2, padding=0, name="u")
        image = np.ones((1, 1, 2, 2))
        g = b.build()
        ex = ReferenceExecutor(g)
        out = ex.run({"x": image})["u"]
        assert out.shape == (1, 1, 4, 4)
        node = [n for n in g if n.name == "u"][0]
        w = ex._weight(node, "w", (1, 1, 2, 2))
        # Stride 2, kernel 2: each input pixel stamps the kernel once.
        assert np.allclose(out[0, 0, :2, :2], w[0, 0])

    def test_embedding_lookup(self):
        b = GraphBuilder("emb")
        ids = b.input((1, 3), name="ids")
        b.embedding(ids, vocab=10, dim=4, name="e")
        out = ReferenceExecutor(b.build()).run(
            {"ids": np.array([[0, 1, 0]], dtype=float)}
        )["e"]
        assert out.shape == (1, 3, 4)
        assert np.allclose(out[0, 0], out[0, 2])  # same token, same vector
