"""Budget enforcement and the graceful-degradation solver ladder."""

import pytest

from repro.compiler import CompilerOptions, GCD2Compiler, compile_model
from repro.core.cost import CostModel
from repro.core.exhaustive import solve_exhaustive
from repro.core.pbqp import solve_pbqp
from repro.errors import BudgetExceeded, ReproError
from repro.verify import SelectionBudget
from tests.conftest import chain_graph, random_dag, small_cnn


class TestSelectionBudget:
    def test_state_budget_exceeded_raises(self):
        budget = SelectionBudget(state_budget=10, solver="test")
        budget.charge(10)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.charge()
        assert excinfo.value.stage == "selection"
        assert excinfo.value.details["solver"] == "test"

    def test_time_budget_checked_at_deadline(self):
        budget = SelectionBudget(time_budget_s=1e-9, solver="test")
        with pytest.raises(BudgetExceeded):
            budget.check_deadline()

    def test_unbounded_budget_never_raises(self):
        budget = SelectionBudget()
        budget.charge(10**9)
        budget.check_deadline()
        assert not budget.bounded

    def test_options_validate_budgets(self):
        with pytest.raises(ReproError):
            CompilerOptions(selection_time_budget_s=0.0)
        with pytest.raises(ReproError):
            CompilerOptions(selection_state_budget=-5)


class TestSolverBudgets:
    def test_exhaustive_respects_state_budget(self):
        graph = random_dag(1, nodes=10)
        model = CostModel()
        with pytest.raises(BudgetExceeded):
            solve_exhaustive(
                graph, model, budget=SelectionBudget(state_budget=20)
            )

    def test_pbqp_respects_state_budget(self):
        graph = random_dag(1, nodes=10)
        model = CostModel()
        with pytest.raises(BudgetExceeded):
            solve_pbqp(
                graph, model, budget=SelectionBudget(state_budget=10)
            )

    def test_generous_budget_changes_nothing(self):
        graph = random_dag(2, nodes=8)
        model = CostModel()
        free = solve_exhaustive(graph, model)
        bounded = solve_exhaustive(
            graph, model, budget=SelectionBudget(state_budget=10**9)
        )
        assert bounded.cost == free.cost


class TestFallbackLadder:
    def test_budgeted_exhaustive_degrades_and_completes(self):
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="exhaustive",
            selection_state_budget=30,
            graph_passes=False,
        )
        compiled = compile_model(graph, options)
        diag = compiled.diagnostics
        assert diag.degraded
        assert diag.fallback_chain[0] == "exhaustive"
        # The compile still produced a full model.
        assert compiled.selection.assignment
        assert compiled.profile.cycles > 0

    def test_budgeted_pbqp_degrades_and_completes(self):
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="pbqp",
            selection_state_budget=10,
            graph_passes=False,
        )
        compiled = compile_model(graph, options)
        assert compiled.diagnostics.fallback_chain[0] == "pbqp"
        assert compiled.selection.assignment

    def test_fallback_chain_records_every_rung_taken(self):
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="exhaustive",
            selection_state_budget=1,
            graph_passes=False,
        )
        compiled = compile_model(graph, options)
        chain = compiled.diagnostics.fallback_chain
        # One state is not enough for any budgeted rung: the ladder
        # walks all the way to the budget-free local baseline.
        assert chain[0] == "exhaustive"
        assert chain[-1] == "local"
        assert compiled.selection.solver == "local"

    def test_strict_turns_degradation_into_an_error(self):
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="exhaustive",
            selection_state_budget=30,
            graph_passes=False,
            strict=True,
        )
        with pytest.raises(BudgetExceeded):
            compile_model(graph, options)

    def test_unbudgeted_compile_never_degrades(self):
        compiled = compile_model(small_cnn())
        assert not compiled.diagnostics.degraded
        assert compiled.diagnostics.fallback_chain == []

    def test_chain_solver_on_chain_graph_stays_put(self):
        options = CompilerOptions(
            selection="chain",
            selection_state_budget=10**9,
            graph_passes=False,
        )
        compiled = compile_model(chain_graph(), options)
        assert not compiled.diagnostics.degraded
        assert "chain" in compiled.selection.solver

    def test_time_budget_degrades_exhaustive(self):
        graph = random_dag(4, nodes=14)
        options = CompilerOptions(
            selection="exhaustive",
            selection_time_budget_s=1e-7,
            graph_passes=False,
        )
        compiled = compile_model(graph, options)
        assert compiled.diagnostics.degraded
        assert compiled.selection.assignment

    def test_fallback_result_still_verifies(self):
        # A downgraded selection must still satisfy the selection
        # verifier (complete assignment, reproducible cost).
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="exhaustive",
            selection_state_budget=1,
            graph_passes=False,
            verify=True,
        )
        compiled = compile_model(graph, options)
        assert compiled.diagnostics.degraded

    def test_fallback_reasons_are_structured(self):
        graph = random_dag(3, nodes=12)
        options = CompilerOptions(
            selection="exhaustive",
            selection_state_budget=30,
            graph_passes=False,
        )
        compiled = compile_model(graph, options)
        record = compiled.diagnostics.fallbacks[0]
        assert record.from_solver == "exhaustive"
        assert record.to_solver
        assert "budget" in record.reason
