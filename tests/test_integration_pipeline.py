"""One end-to-end narrative test across every subsystem.

Build a model with the DSL -> serialize it to JSON -> load it back ->
compile it with the full GCD2 pipeline -> encode a kernel schedule to
binary and decode it -> run quantized inference through the selected
instruction kernels -> check numerics against the float reference ->
cross-check the selection against the exact solver.  If this passes,
the layers genuinely compose.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, GCD2Compiler
from repro.core.cost import CostModel
from repro.core.exhaustive import solve_exhaustive
from repro.core.packing.evaluate import validate_schedule
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.isa.encoding import decode_program, encode_program
from repro.runtime.executor import QuantizedExecutor


def _build_network():
    b = GraphBuilder("integration_net")
    x = b.input((1, 4, 16, 16), name="image")
    stem = b.conv2d(x, 8, kernel=3, name="stem")
    stem = b.relu(stem, name="stem_act")
    left = b.conv2d(stem, 8, kernel=1, padding=0, name="left")
    right = b.depthwise_conv2d(stem, kernel=3, name="right")
    merged = b.add(left, right, name="merge")
    merged = b.relu(merged, name="merge_act")
    pooled = b.max_pool(merged, kernel=2, stride=2)
    flat = b.reshape(b.global_avg_pool(pooled), (1, 8), name="flatten")
    logits = b.dense(flat, 5, name="head")
    b.softmax(logits, name="probs")
    return b.build()


@pytest.fixture(scope="module")
def pipeline():
    original = _build_network()
    # Serialize / deserialize round trip first: the compiler must be
    # fed the *loaded* graph to prove the format carries everything.
    loaded = graph_from_dict(graph_to_dict(original))
    compiled = GCD2Compiler(CompilerOptions()).compile(loaded)
    return original, loaded, compiled


class TestEndToEnd:
    def test_serialization_preserved_structure(self, pipeline):
        original, loaded, _ = pipeline
        assert loaded.operator_count() == original.operator_count()
        assert loaded.total_macs() == original.total_macs()

    def test_selection_matches_exact_solver(self, pipeline):
        _, _, compiled = pipeline
        exact = solve_exhaustive(compiled.graph, CostModel())
        assert compiled.selection.cost == pytest.approx(
            exact.cost, rel=0.02
        )

    def test_every_kernel_schedule_is_legal(self, pipeline):
        _, _, compiled = pipeline
        for cn in compiled.nodes:
            validate_schedule(cn.packets, cn.schedule_body)

    def test_schedules_survive_binary_roundtrip(self, pipeline):
        _, _, compiled = pipeline
        for cn in compiled.nodes:
            if not cn.packets:
                continue
            blob, names = encode_program(cn.packets)
            decoded = decode_program(blob, names)
            assert [len(p) for p in decoded] == [
                len(p) for p in cn.packets
            ]

    def test_quantized_inference_tracks_float(self, pipeline):
        _, _, compiled = pipeline
        feed = {
            "image": np.random.default_rng(0).normal(size=(1, 4, 16, 16))
        }
        quantized = QuantizedExecutor(compiled, seed=2).run(feed)
        reference = ReferenceExecutor(compiled.graph, seed=2).run(feed)
        assert np.argmax(quantized["probs"]) == np.argmax(
            reference["probs"]
        )
        assert np.abs(
            quantized["probs"] - reference["probs"]
        ).max() < 0.15

    def test_latency_model_is_consistent(self, pipeline):
        _, _, compiled = pipeline
        assert compiled.latency_ms > 0
        assert compiled.total_cycles == pytest.approx(
            compiled.kernel_cycles + compiled.transform_cycles
        )
        assert compiled.profile.packets >= compiled.total_packets
