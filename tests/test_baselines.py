"""Tests for the simulated baseline frameworks, compilers and hardware."""

import pytest

from repro.baselines.frameworks import (
    FRAMEWORKS,
    framework_latency_ms,
    framework_profile,
)
from repro.baselines.hardware import (
    ACCELERATORS,
    MOBILE_CPU,
    MOBILE_GPU,
    dsp_power_watts,
)
from repro.baselines.kernel_compilers import (
    KERNEL_COMPILERS,
    RESNET_CONV_KERNELS,
    compile_kernel,
)
from repro.isa.instructions import Opcode
from repro.models import MODELS, build_model
from tests.conftest import small_cnn


class TestFrameworkSupport:
    def test_transformers_unsupported(self):
        for key in ("tflite", "snpe"):
            assert not FRAMEWORKS[key].supports(MODELS["tinybert"])
            assert not FRAMEWORKS[key].supports(MODELS["conformer"])

    def test_snpe_lacks_efficientdet(self):
        assert FRAMEWORKS["tflite"].supports(MODELS["efficientdet_d0"])
        assert not FRAMEWORKS["snpe"].supports(MODELS["efficientdet_d0"])

    def test_cnns_supported_by_both(self):
        for key in ("tflite", "snpe"):
            assert FRAMEWORKS[key].supports(MODELS["resnet50"])

    def test_unsupported_returns_none(self):
        graph = build_model("tinybert")
        assert framework_latency_ms(
            graph, MODELS["tinybert"], FRAMEWORKS["tflite"]
        ) is None
        assert framework_profile(
            graph, MODELS["tinybert"], FRAMEWORKS["tflite"]
        ) is None


class TestFrameworkLatency:
    def test_snpe_faster_than_tflite(self):
        graph = build_model("mobilenet_v3")
        info = MODELS["mobilenet_v3"]
        tflite = framework_latency_ms(graph, info, FRAMEWORKS["tflite"])
        snpe = framework_latency_ms(graph, info, FRAMEWORKS["snpe"])
        assert snpe < tflite

    def test_latencies_positive(self):
        graph = build_model("mobilenet_v3")
        info = MODELS["mobilenet_v3"]
        for key in ("tflite", "snpe"):
            assert framework_latency_ms(graph, info, FRAMEWORKS[key]) > 0


class TestKernelCompilers:
    def test_rake_selections_match_table3(self):
        # RAKE: vrmpy for spatial kernels, vmpy for pointwise (Table III).
        kernels = {k.name: k for k in RESNET_CONV_KERNELS}
        rake = KERNEL_COMPILERS["rake"]
        assert compile_kernel(kernels["C0"], rake).instruction is Opcode.VRMPY
        assert compile_kernel(kernels["C1"], rake).instruction is Opcode.VMPY
        assert compile_kernel(kernels["C4"], rake).instruction is Opcode.VRMPY

    def test_halide_always_vrmpy(self):
        halide = KERNEL_COMPILERS["halide"]
        for kernel in RESNET_CONV_KERNELS:
            assert compile_kernel(kernel, halide).instruction is Opcode.VRMPY

    def test_gcd2_fastest_on_every_kernel(self):
        for kernel in RESNET_CONV_KERNELS:
            cycles = {
                key: compile_kernel(kernel, policy).cycles
                for key, policy in KERNEL_COMPILERS.items()
            }
            # GCD2 matches the minimum (GCD_b can tie when the packing
            # portfolio settles on the same schedule).
            assert cycles["gcd2"] <= min(cycles.values()) * (1 + 1e-9)

    def test_gcd_b_between_gcd2_and_baselines(self):
        # Tensor optimizations only: slower than GCD2, faster than the
        # three baseline compilers (Figure 7's ordering).
        for kernel in RESNET_CONV_KERNELS:
            results = {
                key: compile_kernel(kernel, policy).cycles
                for key, policy in KERNEL_COMPILERS.items()
            }
            assert results["gcd2"] <= results["gcd_b"]
            for baseline in ("halide", "tvm", "rake"):
                assert results["gcd_b"] < results[baseline]

    def test_gemm_dims_computed_from_conv(self):
        kernel = RESNET_CONV_KERNELS[0]  # 7x7 s2 on 224x224x3
        m, k, n = kernel.gemm_dims
        assert (m, k, n) == (112 * 112, 3 * 49, 64)

    def test_packet_counts_reported(self):
        kernel = RESNET_CONV_KERNELS[1]
        result = compile_kernel(kernel, KERNEL_COMPILERS["gcd2"])
        assert result.packets_per_iteration > 0


class TestHardware:
    def test_cpu_slowest_on_reference_models(self):
        # Table I's qualitative claim: DSP < GPU < CPU in latency.
        for name in ("efficientnet_b0", "resnet50"):
            graph = build_model(name)
            info = MODELS[name]
            cpu = MOBILE_CPU.latency_ms(graph)
            gpu = MOBILE_GPU.latency_ms(graph)
            dsp = framework_latency_ms(graph, info, FRAMEWORKS["tflite"])
            assert dsp < gpu < cpu

    def test_roofline_monotone_in_macs(self):
        small = build_model("mobilenet_v3")
        big = build_model("resnet50")
        assert MOBILE_CPU.latency_ms(small) < MOBILE_CPU.latency_ms(big)

    def test_energy_positive(self):
        graph = build_model("mobilenet_v3")
        assert MOBILE_CPU.energy_per_inference_j(graph) > 0

    def test_power_model_monotone_and_calibrated(self):
        assert dsp_power_watts(0.0) < dsp_power_watts(0.5) < (
            dsp_power_watts(1.0)
        )
        # GCD2's ~0.7 occupancy should draw ~2.6 W (the paper's figure).
        assert dsp_power_watts(0.7) == pytest.approx(2.6, abs=0.1)

    def test_power_clamped(self):
        assert dsp_power_watts(2.0) == dsp_power_watts(1.0)
        assert dsp_power_watts(-1.0) == dsp_power_watts(0.0)

    def test_accelerator_constants_match_table5(self):
        assert ACCELERATORS["edgetpu"].fps == 17.8
        assert ACCELERATORS["edgetpu"].fpw == pytest.approx(8.9)
        assert ACCELERATORS["jetson_int8"].fpw == pytest.approx(36.7, abs=0.1)
