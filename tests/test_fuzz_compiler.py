"""Fuzz tests: the full compiler pipeline over generated graphs.

Hypothesis drives graph generation (via the seeded random-DAG builder)
and checks the pipeline's global invariants on every one: complete
legal plans, solver cost sandwich, positive latency, legal schedules,
and quantized-vs-float numerical agreement on the small ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, compile_model
from repro.core.cost import CostModel
from repro.core.exhaustive import solve_exhaustive
from repro.core.local import solve_local
from repro.core.packing.evaluate import validate_schedule
from repro.core.selection_common import aggregate_cost
from tests.conftest import random_dag


class TestCompilerInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_invariants_hold(self, seed):
        graph = random_dag(seed, nodes=7)
        compiled = compile_model(graph)

        # 1. Every real operator has a plan and a legal schedule.
        compiled_ids = {cn.node.node_id for cn in compiled.nodes}
        for node in compiled.graph:
            if node.op_type not in ("Input", "Constant"):
                assert node.node_id in compiled_ids
        for cn in compiled.nodes:
            validate_schedule(cn.packets, cn.schedule_body)
            assert cn.cycles >= 0
            if cn.node.op.is_compute_heavy:
                assert cn.plan.instruction is not None

        # 2. Latency is positive and decomposes consistently.
        assert compiled.latency_ms > 0
        assert compiled.total_cycles >= compiled.kernel_cycles

        # 3. Selection cost equals the Equation 1 aggregate.
        model = CostModel()
        recomputed = aggregate_cost(
            compiled.graph, model, compiled.selection.assignment
        )
        assert compiled.selection.cost == pytest.approx(
            recomputed, rel=1e-6
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_solver_sandwich(self, seed):
        graph = random_dag(seed, nodes=6)
        model = CostModel()
        exact = solve_exhaustive(graph, model)
        local = solve_local(graph, model)
        gcd2 = compile_model(
            graph, CompilerOptions(graph_passes=False)
        ).selection
        assert exact.cost - 1e-6 <= gcd2.cost <= local.cost + 1e-6

    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_quantized_execution_tracks_reference(self, seed):
        from repro.graph.execute import ReferenceExecutor
        from repro.runtime.executor import QuantizedExecutor

        graph = random_dag(seed, nodes=6)
        compiled = compile_model(graph)
        quantized = QuantizedExecutor(compiled, seed=seed).run()
        reference = ReferenceExecutor(compiled.graph, seed=seed).run()
        assert set(quantized) == set(reference)
        for name in reference:
            ref = reference[name]
            got = quantized[name]
            scale = max(1e-6, float(np.abs(ref).max()))
            assert np.abs(got - ref).max() / scale < 0.25, name
