"""Tests for the Agg_Cost breakdown helper."""

import pytest

from repro.core.cost import CostModel
from repro.core.exhaustive import solve_exhaustive
from repro.core.local import solve_local
from repro.core.selection_common import aggregate_cost, cost_breakdown
from tests.conftest import chain_graph, small_cnn


class TestCostBreakdown:
    def test_components_sum_to_aggregate(self):
        graph = small_cnn()
        model = CostModel()
        result = solve_exhaustive(graph, model)
        breakdown = cost_breakdown(graph, model, result.assignment)
        assert breakdown["total"] == pytest.approx(
            aggregate_cost(graph, model, result.assignment), rel=1e-9
        )
        assert breakdown["total"] == pytest.approx(
            breakdown["nodes"] + breakdown["edges"] + breakdown["boundary"],
            rel=1e-9,
        )

    def test_all_components_nonnegative(self):
        graph = chain_graph(length=5)
        model = CostModel()
        result = solve_local(graph, model)
        breakdown = cost_breakdown(graph, model, result.assignment)
        for key in ("nodes", "edges", "boundary"):
            assert breakdown[key] >= 0.0

    def test_global_selection_spends_less_on_edges(self):
        # The whole point of the global optimization: transform (edge)
        # cost shrinks versus the local-optimal assignment.
        graph = small_cnn()
        model = CostModel()
        local = cost_breakdown(
            graph, model, solve_local(graph, model).assignment
        )
        best = cost_breakdown(
            graph, model, solve_exhaustive(graph, model).assignment
        )
        assert best["edges"] <= local["edges"]
        assert best["total"] <= local["total"]
