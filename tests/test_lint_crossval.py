"""Cross-validation of the static analyzer against its two oracles.

1. The fault-injection registry: every packing/codegen-stage fault that
   :mod:`repro.verify.faultinject` can inject must be caught *statically*
   by the named lint rule in :data:`repro.lint.FAULT_RULES` — no
   execution, just analysis of the corrupted artefacts.
2. The simulator: schedules the linter passes must execute to the same
   memory bytes as sequential execution (positive-direction hazard
   agreement), and a schedule corrupted with a hard co-pack must be
   flagged by LINT-PK001.

Marked ``lint_crossval`` so CI can run the matrix standalone.
"""

import numpy as np
import pytest

from repro.codegen.program import (
    build_matmul_program,
    run_packed,
    run_sequential,
)
from repro.compiler import CompilerOptions, compile_model
from repro.core.packing.baselines import (
    pack_list_schedule,
    pack_soft_to_hard,
    pack_soft_to_none,
)
from repro.core.packing.sda import pack_best, pack_instructions
from repro.isa.dependencies import DependencyKind, classify_dependency
from repro.lint import (
    FAULT_RULES,
    STATIC_STAGES,
    Severity,
    StaticAnalyzer,
    lint_model,
)
from repro.models import build_model, model_names
from repro.verify.faultinject import FAULTS

pytestmark = pytest.mark.lint_crossval

PACKERS = [
    pack_instructions,
    pack_best,
    pack_soft_to_hard,
    pack_soft_to_none,
    pack_list_schedule,
]

STATIC_FAULTS = [
    name
    for name, fault in FAULTS.items()
    if fault.stage in STATIC_STAGES
]


class TestFaultRuleTotality:
    def test_every_static_stage_fault_has_a_named_rule(self):
        # If a new lowering/packing fault lands in the registry without
        # a lint rule that catches it, this is the test that fails.
        assert set(STATIC_FAULTS) == set(FAULT_RULES)

    def test_named_rules_exist(self):
        from repro.lint import rule

        for rule_id in FAULT_RULES.values():
            assert rule(rule_id).rule_id == rule_id


class TestFaultsCaughtStatically:
    @pytest.fixture(scope="class")
    def model_name(self):
        return "fst"

    @pytest.mark.parametrize("fault_name", STATIC_FAULTS)
    def test_fault_flagged_by_named_rule(self, fault_name, model_name):
        # Fresh compile per fault: mutators corrupt artefacts in place.
        compiled = compile_model(build_model(model_name), CompilerOptions())
        fault = FAULTS[fault_name]
        if fault.stage == "lowering":
            kernels = {cn.node.node_id: cn.kernel for cn in compiled.nodes}
            fault.mutate(kernels)
        else:
            fault.mutate(compiled.nodes)
        report = StaticAnalyzer().lint_compiled(compiled.nodes)
        flagged = {d.rule_id for d in report.errors}
        assert FAULT_RULES[fault_name] in flagged, (
            fault_name,
            sorted(flagged),
        )

    def test_unfaulted_compile_is_clean(self, model_name):
        compiled = compile_model(build_model(model_name), CompilerOptions())
        report = StaticAnalyzer().lint_compiled(compiled.nodes)
        assert not report.errors


class TestCleanZoo:
    @pytest.mark.parametrize("name", model_names())
    def test_zoo_model_lints_clean(self, name):
        compiled = compile_model(build_model(name), CompilerOptions())
        report = lint_model(compiled)
        offenders = report.at_least(Severity.WARNING)
        assert not offenders, [d.render() for d in offenders]


class TestSimulatorAgreement:
    """Hazard verdicts vs actual memory effects on matmul programs.

    Positive direction: a schedule with no hazard diagnostics must
    execute bit-identically to the sequential program.  (The negative
    direction is not observable on this simulator — it executes packet
    members in issue order with immediate writes, so even a hard
    co-pack cannot corrupt memory; see docs/LINT.md.)
    """

    @pytest.mark.parametrize("packer", PACKERS)
    @pytest.mark.parametrize("shape", [(8, 4, 3), (32, 8, 4), (64, 12, 2)])
    def test_clean_schedule_matches_sequential(self, packer, shape):
        m, k, n = shape
        rng = np.random.default_rng(m + k + n)
        a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
        b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
        program = build_matmul_program(a.shape, b)

        packets = packer(program.instructions)
        report = StaticAnalyzer().lint_schedule(
            packets, program.instructions
        )
        hazards = [
            d
            for d in report.at_least(Severity.ERROR)
            if d.rule_id.startswith(("LINT-PK", "LINT-SC"))
        ]
        assert not hazards, [d.render() for d in hazards]

        sequential, _ = run_sequential(program, a)
        packed, _ = run_packed(program, a, packer)
        assert np.array_equal(packed, sequential)

    def test_injected_hard_copack_is_flagged(self):
        rng = np.random.default_rng(3)
        b = rng.integers(-8, 8, (8, 4), dtype=np.int8)
        program = build_matmul_program((8, 8), b)
        packets = pack_best(program.instructions)

        corrupted = False
        for i, earlier in enumerate(packets):
            for later in packets[i + 1 :]:
                for x in earlier.instructions:
                    for y in later.instructions:
                        if (
                            classify_dependency(x, y)
                            is DependencyKind.HARD
                        ):
                            later.instructions.remove(y)
                            earlier.instructions.append(y)
                            corrupted = True
                            break
                    if corrupted:
                        break
                if corrupted:
                    break
            if corrupted:
                break
        assert corrupted, "no hard pair found to corrupt"

        report = StaticAnalyzer().lint_schedule(
            packets, program.instructions
        )
        assert "LINT-PK001" in {d.rule_id for d in report.errors}
