"""Shared fixtures and graph generators for the test suite."""

from __future__ import annotations

import random
from typing import List

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationalGraph
from repro.isa.instructions import Instruction, Opcode


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def small_cnn(name: str = "small_cnn", size: int = 16) -> ComputationalGraph:
    """A small but representative CNN: convs, residual, pool, dense."""
    b = GraphBuilder(name)
    x = b.input((1, 3, size, size), name="image")
    x = b.conv2d(x, 8, kernel=3)
    x = b.relu(x)
    y = b.conv2d(x, 8, kernel=3)
    y = b.relu(y)
    x = b.add(x, y)
    x = b.max_pool(x, kernel=2, stride=2)
    x = b.conv2d(x, 16, kernel=1, padding=0)
    x = b.global_avg_pool(x)
    x = b.reshape(x, (1, 16))
    x = b.dense(x, 4)
    b.softmax(x)
    return b.build()


def chain_graph(length: int = 6, size: int = 16) -> ComputationalGraph:
    """A pure linear chain of conv/activation operators."""
    b = GraphBuilder(f"chain_{length}")
    x = b.input((1, 4, size, size), name="input")
    for i in range(length):
        if i % 2 == 0:
            x = b.conv2d(x, 4 + 4 * (i % 3), kernel=3, name=f"conv_{i}")
        else:
            x = b.relu(x, name=f"act_{i}")
    return b.build()


def random_dag(seed: int, nodes: int = 8, size: int = 8) -> ComputationalGraph:
    """A random small DAG mixing compute, elementwise and transforms."""
    rnd = random.Random(seed)
    b = GraphBuilder(f"dag_{seed}")
    handles = [b.input((1, 4, size, size), name="input")]
    for i in range(nodes):
        source = rnd.choice(handles[-3:])
        kind = rnd.random()
        if kind < 0.45:
            handle = b.conv2d(
                source, 4, kernel=rnd.choice([1, 3]), name=f"conv_{i}"
            )
        elif kind < 0.65:
            other = rnd.choice(handles)
            if b.shape_of(other) == b.shape_of(source):
                handle = b.add(source, other, name=f"add_{i}")
            else:
                handle = b.relu(source, name=f"relu_{i}")
        elif kind < 0.85:
            handle = b.relu(source, name=f"act_{i}")
        else:
            shape = b.shape_of(source)
            handle = b.reshape(source, shape, name=f"reshape_{i}")
        handles.append(handle)
    return b.build()


def stream_program(operands: int = 3) -> List[Instruction]:
    """A Figure-5-style streaming program (loads, adds, widen, stores)."""
    program = [
        Instruction(
            Opcode.VLOAD, dests=(f"v{i}",), srcs=(f"r_in{i}",)
        )
        for i in range(operands)
    ]
    result = "v0"
    for i in range(1, operands):
        dest = f"v_sum{i}"
        program.append(
            Instruction(Opcode.VADD, dests=(dest,), srcs=(result, f"v{i}"))
        )
        result = dest
    program.append(
        Instruction(
            Opcode.VSHUFF, dests=("v_lo", "v_hi"), srcs=(result, result)
        )
    )
    program.append(Instruction(Opcode.VSTORE, srcs=("v_lo", "r_out")))
    program.append(Instruction(Opcode.VSTORE, srcs=("v_hi", "r_out2")))
    return program
