"""Tests for the extension instruction plans (vtmpy / vmpye)."""

import pytest

from repro.compiler import CompilerOptions, compile_model
from repro.core.cost import CostModel, gemm_cycles
from repro.core.plans import enumerate_plans
from repro.core.selection_common import aggregate_cost
from repro.graph.builder import GraphBuilder
from repro.isa.instructions import Opcode
from tests.conftest import small_cnn


class TestExtensionPlans:
    def test_extension_cost_model_defined(self):
        for instr in (Opcode.VTMPY, Opcode.VMPYE):
            assert gemm_cycles(instr, 64, 12, 8) > 0

    def test_vmpye_is_a_poor_general_choice(self):
        # The fallback instruction: offered, but rarely optimal.
        for size in (32, 64, 128):
            assert gemm_cycles(Opcode.VMPYE, size, size, size) > (
                gemm_cycles(Opcode.VMPY, size, size, size)
            )

    def test_extended_selection_never_worse(self):
        # A superset of plans can only lower the optimum.
        graph = small_cnn()
        base = CostModel(include_extensions=False)
        extended = CostModel(include_extensions=True)
        from repro.core.exhaustive import solve_exhaustive

        base_cost = solve_exhaustive(graph, base).cost
        ext_cost = solve_exhaustive(graph, extended).cost
        assert ext_cost <= base_cost + 1e-9

    def test_compile_with_extensions(self):
        compiled = compile_model(
            small_cnn(), CompilerOptions(include_extensions=True)
        )
        assert compiled.latency_ms > 0
        # Whatever got chosen, the selection remains Equation-1 sound.
        model = CostModel(include_extensions=True)
        recomputed = aggregate_cost(
            compiled.graph, model, compiled.selection.assignment
        )
        assert compiled.selection.cost == pytest.approx(
            recomputed, rel=1e-6
        )

    def test_vtmpy_offered_for_3_wide_convs_only(self):
        b = GraphBuilder("k")
        x = b.input((1, 8, 16, 16), name="x")
        three = b.conv2d(x, 8, kernel=3, name="k3")
        one = b.conv2d(x, 8, kernel=1, padding=0, name="k1")
        graph = b.build()
        node3 = [n for n in graph if n.name == "k3"][0]
        node1 = [n for n in graph if n.name == "k1"][0]
        instrs3 = {
            p.instruction
            for p in enumerate_plans(node3, include_extensions=True)
        }
        instrs1 = {
            p.instruction
            for p in enumerate_plans(node1, include_extensions=True)
        }
        assert Opcode.VTMPY in instrs3
        assert Opcode.VTMPY not in instrs1
        assert Opcode.VMPYE in instrs1
