"""Static analysis surfaced through the serve layer."""

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.errors import ModelNotReadyError
from repro.graph.serialization import save_graph
from repro.serve import ServeConfig, ServeServer, ServeService
from repro.serve.chaos import build_chaos_graph
from tests.conftest import small_cnn


@pytest.fixture
def graph_path(tmp_path):
    path = tmp_path / "small_cnn.json"
    save_graph(small_cnn(), str(path))
    return str(path)


def _service(tmp_path, **overrides):
    config = ServeConfig(
        cache_dir=str(tmp_path / "cache"),
        graph_root=str(tmp_path),
        retry_backoff_s=0.01,
        **overrides,
    )
    return ServeService(config).start(warm=False)


def _register(service, graph_path, name="m1", **kwargs):
    entry, job = service.register(name, source=graph_path, **kwargs)
    assert job.wait(timeout=120), "compile job hung"
    return entry, job


class TestServiceAnalysis:
    def test_ready_model_carries_analysis_summary(
        self, tmp_path, graph_path
    ):
        service = _service(tmp_path)
        try:
            entry, job = _register(service, graph_path)
            assert job.ok and entry.state == "ready"
            assert entry.analysis is not None
            assert entry.analysis["errors"] == 0
            assert entry.analysis["arena_bytes"] > 0
            proved = entry.analysis["proved"]
            assert proved["memory_plan_safe"]
            assert proved["accumulators_fit_int32"]
            payload = entry.to_payload()
            assert payload["analysis"]["errors"] == 0
        finally:
            service.stop()

    def test_analysis_view_returns_full_report(
        self, tmp_path, graph_path
    ):
        service = _service(tmp_path)
        try:
            _register(service, graph_path)
            report = service.analysis("m1")
            assert report["summary"]["errors"] == 0
            assert report["memory_plan"]["arena_size"] > 0
            assert report["intervals"]
        finally:
            service.stop()

    def test_analysis_before_ready_is_structured(
        self, tmp_path, graph_path
    ):
        service = _service(tmp_path)
        try:
            service.registry.add(
                __import__(
                    "repro.serve.registry", fromlist=["ModelEntry"]
                ).ModelEntry(name="cold", source=graph_path)
            )
            with pytest.raises(ModelNotReadyError):
                service.analysis("cold")
        finally:
            service.stop()

    def test_analysis_failure_degrades_to_warning(
        self, tmp_path, graph_path, monkeypatch
    ):
        import repro.absint as absint

        def explode(compiled, calibration=None, **kwargs):
            raise RuntimeError("analysis blew up")

        monkeypatch.setattr(absint, "analyze_model", explode)
        service = _service(tmp_path)
        try:
            entry, job = _register(service, graph_path)
            # Serving survives; the failure is a diagnostic, not an
            # outage.
            assert job.ok and entry.state == "ready"
            assert entry.analysis is None
            warnings = service.diagnostics.to_payload()["warnings"]
            assert any("static analysis failed" in w for w in warnings)
        finally:
            service.stop()

    def test_strict_gate_fails_erroring_models(
        self, tmp_path, graph_path, monkeypatch
    ):
        import repro.absint as absint

        real = absint.analyze_model

        class FakeAnalysis:
            def summary(self):
                return {
                    "errors": 2,
                    "warnings": 0,
                    "rules": ["LINT-QR002"],
                }

        monkeypatch.setattr(
            absint, "analyze_model", lambda *a, **k: FakeAnalysis()
        )
        service = _service(tmp_path, strict_analysis=True)
        try:
            entry, job = _register(service, graph_path)
            assert not job.ok
            assert entry.state == "failed"
            assert "static analysis" in entry.error["message"]
        finally:
            service.stop()

    def test_strict_gate_passes_clean_models(
        self, tmp_path, graph_path
    ):
        service = _service(tmp_path, strict_analysis=True)
        try:
            entry, job = _register(service, graph_path)
            assert job.ok and entry.state == "ready"
            assert entry.analysis["errors"] == 0
        finally:
            service.stop()


class TestHttpRoute:
    def test_get_models_name_analysis(self, tmp_path):
        graph_file = tmp_path / "chaos_cnn.json"
        save_graph(build_chaos_graph(), str(graph_file))
        config = ServeConfig(
            cache_dir=str(tmp_path / "cache"),
            graph_root=str(tmp_path),
            retry_backoff_s=0.01,
        )
        with ServeServer(config) as srv:
            body = json.dumps(
                {
                    "name": "m1",
                    "source": str(graph_file),
                    "wait": True,
                }
            ).encode()
            req = urllib.request.Request(
                f"{srv.url}/models",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=120) as resp:
                assert resp.status == 200

            with urllib.request.urlopen(
                f"{srv.url}/models/m1/analysis", timeout=120
            ) as resp:
                report = json.loads(resp.read())
            assert resp.status == 200
            assert report["summary"]["errors"] == 0
            assert report["memory_plan"]["arena_size"] > 0

            with urllib.request.urlopen(
                f"{srv.url}/models/m1", timeout=120
            ) as resp:
                model = json.loads(resp.read())
            assert model["analysis"]["errors"] == 0
