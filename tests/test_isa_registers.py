"""Unit tests for the register model."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa.registers import RegisterFile, ScalarRegister, VectorRegister


class TestVectorRegister:
    def test_default_zeroed(self):
        reg = VectorRegister()
        assert (reg.data == 0).all()
        assert reg.data.nbytes == 128

    def test_from_lanes_int16(self):
        lanes = np.arange(64, dtype=np.int16)
        reg = VectorRegister.from_lanes(lanes)
        assert (reg.view(np.int16) == lanes).all()

    def test_from_lanes_int32(self):
        lanes = np.arange(32, dtype=np.int32)
        reg = VectorRegister.from_lanes(lanes)
        assert (reg.view(np.int32) == lanes).all()

    def test_view_reinterprets_without_copy_semantics(self):
        lanes = np.arange(128, dtype=np.uint8)
        reg = VectorRegister(lanes)
        assert reg.view(np.uint8).shape == (128,)
        assert reg.view(np.int16).shape == (64,)
        assert reg.view(np.int32).shape == (32,)

    def test_wrong_size_rejected(self):
        with pytest.raises(IsaError):
            VectorRegister(np.zeros(64, dtype=np.uint8))
        with pytest.raises(IsaError):
            VectorRegister.from_lanes(np.zeros(100, dtype=np.int8))

    def test_copy_is_independent(self):
        reg = VectorRegister(np.zeros(128, dtype=np.uint8))
        clone = reg.copy()
        clone.data[0] = 9
        assert reg.data[0] == 0


class TestScalarRegister:
    def test_wraps_to_32_bits(self):
        assert ScalarRegister(1 << 33).value == 0

    def test_signed_interpretation(self):
        assert ScalarRegister(0xFFFFFFFF).signed() == -1
        assert ScalarRegister(5).signed() == 5


class TestRegisterFile:
    def test_vector_name_detection(self):
        assert RegisterFile.is_vector_name("v0")
        assert RegisterFile.is_vector_name("v_acc")
        assert not RegisterFile.is_vector_name("r0")

    def test_lazy_zero_initialization(self):
        rf = RegisterFile()
        assert (rf.read_vector("v3").data == 0).all()
        assert rf.read_scalar("r7") == 0

    def test_write_then_read(self):
        rf = RegisterFile()
        rf.write_scalar("r0", -42)
        assert rf.read_scalar("r0") == -42
        payload = VectorRegister(np.arange(128, dtype=np.uint8))
        rf.write_vector("v0", payload)
        assert (rf.read_vector("v0").data == np.arange(128)).all()

    def test_write_vector_copies(self):
        rf = RegisterFile()
        payload = VectorRegister(np.zeros(128, dtype=np.uint8))
        rf.write_vector("v0", payload)
        payload.data[0] = 99
        assert rf.read_vector("v0").data[0] == 0

    def test_kind_mismatch_rejected(self):
        rf = RegisterFile()
        with pytest.raises(IsaError):
            rf.read_vector("r0")
        with pytest.raises(IsaError):
            rf.read_scalar("v0")
        with pytest.raises(IsaError):
            rf.write_scalar("v0", 1)
        with pytest.raises(IsaError):
            rf.write_vector("r0", VectorRegister())

    def test_names_enumeration(self):
        rf = RegisterFile()
        rf.read_vector("v1")
        rf.read_scalar("r1")
        assert set(rf.names()) == {"v1", "r1"}
