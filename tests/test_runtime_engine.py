"""The batched inference engine: bit-identity, threading, diagnostics.

The engine's one non-negotiable claim is that batching and the worker
pool are *transparent*: same bits as running the per-sample executor
under the same frozen calibration.  ``verify_engine_parity`` checks it
differentially, and these tests run that check across graph shapes on
both GEMM paths (instruction kernels and the exact BLAS fallback).
"""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.errors import SimulationError
from repro.harness import example_feeds
from repro.models import build_model
from repro.runtime.engine import InferenceDiagnostics, InferenceEngine
from repro.runtime.executor import QuantizedExecutor
from repro.verify.runtime import (
    RuntimeVerificationError,
    verify_engine_parity,
)
from tests.conftest import small_cnn


def _calibrated_engine(compiled, samples=2, **kwargs):
    engine = InferenceEngine(compiled, **kwargs)
    engine.calibrate(example_feeds(compiled.graph, count=samples, seed=99))
    return engine


class TestBatchedParity:
    def test_small_cnn_kernel_path_is_bit_identical(self):
        # kernel_mac_limit=None: every GEMM goes through the simulated
        # instruction kernels, the strictest parity target.
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled)
        feeds = example_feeds(compiled.graph, count=4)
        report = verify_engine_parity(engine, feeds)
        assert report["samples"] == 4
        assert report["outputs"] >= 4

    @pytest.mark.parametrize("model_name", ["mobilenet_v3", "tinybert"])
    def test_zoo_models_are_bit_identical(self, model_name):
        # BLAS path (kernel_mac_limit=0) keeps full models tractable;
        # the kernel suite proves it bit-identical to the kernels.
        compiled = compile_model(build_model(model_name))
        engine = _calibrated_engine(compiled, kernel_mac_limit=0)
        feeds = example_feeds(compiled.graph, count=3)
        report = verify_engine_parity(engine, feeds)
        assert report["samples"] == 3

    def test_batch_of_one_matches_executor(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled)
        (feeds,) = example_feeds(compiled.graph, count=1)
        (batched,) = engine.run_batch([feeds])
        single = QuantizedExecutor(
            compiled, calibration=engine.calibration
        ).run(feeds)
        for name in single:
            np.testing.assert_array_equal(batched[name], single[name])

    def test_parity_check_catches_divergence(self, monkeypatch):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled)
        feeds = example_feeds(compiled.graph, count=2)
        honest = engine.run_batch

        def corrupted(feeds_list):
            results = honest(feeds_list)
            for name in results[-1]:
                results[-1][name] = results[-1][name] + 1.0
            return results

        monkeypatch.setattr(engine, "run_batch", corrupted)
        with pytest.raises(RuntimeVerificationError) as exc:
            verify_engine_parity(engine, feeds)
        assert "sample" in str(exc.value.details)

    def test_batch_actually_stacks_gemm_rows(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled)
        feeds = example_feeds(compiled.graph, count=3)
        engine.run_batch(feeds)
        assert engine.diagnostics.batches == 1
        assert engine.diagnostics.stacked_gemm_rows > 0


class TestCalibrationGate:
    def test_run_batch_requires_calibration(self):
        engine = InferenceEngine(compile_model(small_cnn()))
        with pytest.raises(SimulationError) as exc:
            engine.run_batch(example_feeds(engine.compiled.graph))
        assert "calibrate" in str(exc.value)

    def test_submit_requires_calibration(self):
        engine = InferenceEngine(compile_model(small_cnn()))
        with pytest.raises(SimulationError):
            engine.submit({})

    def test_calibrate_reaches_every_worker_executor(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled, workers=2)
        try:
            engine.run_many(example_feeds(compiled.graph, count=2))
            refreshed = engine.calibrate(
                example_feeds(compiled.graph, count=1, seed=7)
            )
            assert all(
                executor.calibration is refreshed
                for executor in engine._executors()
            )
        finally:
            engine.close()


class TestWorkerPool:
    def test_run_many_matches_sequential_order(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled, workers=2)
        feeds = example_feeds(compiled.graph, count=5)
        try:
            pooled = engine.run_many(feeds)
        finally:
            engine.close()
        executor = QuantizedExecutor(
            compiled, calibration=engine.calibration
        )
        for got, sample in zip(pooled, feeds):
            expected = executor.run(sample)
            for name in expected:
                np.testing.assert_array_equal(got[name], expected[name])

    def test_diagnostics_record_each_request(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled, workers=1)
        feeds = example_feeds(compiled.graph, count=4)
        try:
            engine.run_many(feeds)
        finally:
            engine.close()
        diag = engine.diagnostics
        assert diag.requests == 4
        assert len(diag.latencies_ms) == 4
        assert diag.mean_latency_ms > 0.0
        assert diag.p99_latency_ms >= diag.mean_latency_ms / 4
        assert any("requests served: 4" in line for line in diag.summary_lines())

    def test_worker_errors_propagate_to_the_future(self):
        compiled = compile_model(small_cnn())
        engine = _calibrated_engine(compiled, workers=1)
        try:
            future = engine.submit({"image": np.zeros((2, 2))})
            with pytest.raises(Exception):
                future.result(timeout=30)
        finally:
            engine.close()

    def test_closed_engine_rejects_submissions(self):
        engine = _calibrated_engine(compile_model(small_cnn()))
        engine.close()
        with pytest.raises(SimulationError) as exc:
            engine.submit({})
        assert "closed" in str(exc.value)

    def test_context_manager_closes(self):
        compiled = compile_model(small_cnn())
        with _calibrated_engine(compiled, workers=1) as engine:
            engine.run_many(example_feeds(compiled.graph, count=1))
        assert engine._closed
        assert not engine._threads

    def test_constructor_validates_pool_shape(self):
        compiled = compile_model(small_cnn())
        with pytest.raises(ValueError):
            InferenceEngine(compiled, workers=0)
        with pytest.raises(ValueError):
            InferenceEngine(compiled, queue_size=0)


class TestConvenienceConstructors:
    def test_compiled_model_spawns_executor_and_engine(self):
        compiled = compile_model(small_cnn())
        executor = compiled.executor(kernel_mac_limit=0)
        engine = compiled.engine(kernel_mac_limit=0, workers=1)
        assert isinstance(executor, QuantizedExecutor)
        assert isinstance(engine, InferenceEngine)
        assert executor.compiled is compiled
        assert engine.compiled is compiled


class TestDiagnostics:
    def test_empty_diagnostics_are_calm(self):
        diag = InferenceDiagnostics()
        assert diag.mean_latency_ms == 0.0
        assert diag.p99_latency_ms == 0.0
        assert diag.max_queue_depth == 0
        assert diag.summary_lines() == ["requests served: 0"]

    def test_batch_and_warning_lines(self):
        diag = InferenceDiagnostics()
        diag.record_batch(samples=3, stacked_rows=120)
        diag.warn("queue saturated")
        lines = diag.summary_lines()
        assert any("120 stacked GEMM rows" in line for line in lines)
        assert any("warning: queue saturated" in line for line in lines)
