"""Campaign execution: publish-with-dedupe, isolation, parallelism."""

import json

import pytest

from repro.campaign import (
    CELL_DONE,
    CELL_ERROR,
    CampaignDB,
    CampaignSpec,
    default_campaign_dir,
    execute_cell,
    publish_trials,
    run_campaign,
)
from repro.errors import CampaignError
from repro.models import build_model
from repro.tune import TrialDB, default_tune_dir

ONE_CELL = CampaignSpec.from_payload({
    "models": ["wdsr_b"],
    "machines": ["hexagon698"],
    "strategies": ["random"],
    "trials": 2,
    "seed": 0,
})

TWO_MACHINES = CampaignSpec.from_payload({
    "models": ["wdsr_b"],
    "machines": ["hexagon698", "narrow64"],
    "strategies": ["random"],
    "trials": 2,
    "seed": 0,
})


def shared_lines(cache_dir):
    path = default_tune_dir(cache_dir) / "trials.jsonl"
    if not path.is_file():
        return []
    return [l for l in path.read_text().splitlines() if l.strip()]


@pytest.mark.slow
class TestRunCampaign:
    def test_trials_flow_into_the_shared_trialdb(self, tmp_path):
        cache = str(tmp_path / "cache")
        summary = run_campaign(ONE_CELL, cache_dir=cache)
        assert summary["done"] == 1 and summary["error"] == 0
        shared = TrialDB(default_tune_dir(cache), machine="hexagon698")
        records = shared.records(model="wdsr_b")
        assert len(records) == 2
        assert all(r.machine == "hexagon698" for r in records)
        best = shared.best("wdsr_b")
        assert best is not None
        # Zero new plumbing: the tuned-compile path reads the same DB.
        from repro.compiler import CompilerOptions, compile_model

        compiled = compile_model(
            build_model("wdsr_b"),
            CompilerOptions(tuned=True, cache_dir=cache),
        )
        assert compiled.diagnostics.tuning["fingerprint"] == (
            best.fingerprint
        )

    def test_done_event_carries_the_resultfields(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_campaign(ONE_CELL, cache_dir=cache)
        db = CampaignDB(
            default_campaign_dir(cache, ONE_CELL.fingerprint)
        )
        state = db.cell_states(ONE_CELL)["wdsr_b--hexagon698--random"]
        assert state["status"] == CELL_DONE
        assert state["best_cycles"] <= state["default_cycles"]
        assert state["speedup"] >= 1.0
        assert state["trial_count"] == 2
        assert state["wall_bucket"]
        assert state["machine"] == "hexagon698"
        assert len(state["schema"]) == 16

    def test_rerun_claims_and_publishes_nothing(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_campaign(ONE_CELL, cache_dir=cache)
        before = shared_lines(cache)
        summary = run_campaign(ONE_CELL, cache_dir=cache)
        assert summary["claimed"] == 0
        assert summary["skipped"] == 1
        assert shared_lines(cache) == before

    def test_fresh_discards_state_but_duplicates_nothing(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_campaign(ONE_CELL, cache_dir=cache)
        before = shared_lines(cache)
        summary = run_campaign(ONE_CELL, cache_dir=cache, fresh=True)
        # Every cell re-runs, but deterministic trials dedupe away.
        assert summary["claimed"] == 1
        assert sorted(shared_lines(cache)) == sorted(before)

    def test_cell_error_is_isolated(self, tmp_path):
        cache = str(tmp_path / "cache")

        def hook(stage, cell_id):
            if stage == "searched" and "hexagon698" in cell_id:
                raise ValueError("injected cell fault")

        summary = run_campaign(
            TWO_MACHINES, cache_dir=cache, fault_hook=hook
        )
        assert summary["done"] == 1
        assert summary["error"] == 1
        db = CampaignDB(
            default_campaign_dir(cache, TWO_MACHINES.fingerprint)
        )
        states = db.cell_states(TWO_MACHINES)
        assert states["wdsr_b--hexagon698--random"]["status"] == CELL_ERROR
        assert "injected cell fault" in (
            states["wdsr_b--hexagon698--random"]["error"]
        )
        assert states["wdsr_b--narrow64--random"]["status"] == CELL_DONE
        # The failed cell is claimable again on the next run.
        assert db.claimable(TWO_MACHINES) == []

    def test_parallel_cells_match_sequential(self, tmp_path):
        seq_cache = str(tmp_path / "seq")
        par_cache = str(tmp_path / "par")
        run_campaign(TWO_MACHINES, cache_dir=seq_cache, jobs=1)
        run_campaign(TWO_MACHINES, cache_dir=par_cache, jobs=2)
        assert sorted(shared_lines(seq_cache)) == sorted(
            shared_lines(par_cache)
        )

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="jobs"):
            run_campaign(ONE_CELL, cache_dir=str(tmp_path), jobs=0)


class TestPublish:
    def test_appends_only_missing_lines(self, tmp_path):
        staging = tmp_path / "staging.jsonl"
        shared = tmp_path / "shared.jsonl"
        lines = [
            json.dumps({"trial": i, "model": "m"}, sort_keys=True)
            for i in range(3)
        ]
        staging.write_text("\n".join(lines) + "\n")
        assert publish_trials(staging, shared) == 3
        assert publish_trials(staging, shared) == 0
        assert shared.read_text().splitlines() == lines

    def test_partial_publish_resumes_without_duplicates(self, tmp_path):
        staging = tmp_path / "staging.jsonl"
        shared = tmp_path / "shared.jsonl"
        lines = [json.dumps({"trial": i}) for i in range(4)]
        staging.write_text("\n".join(lines) + "\n")
        # A crash after two lines made it to the shared DB.
        shared.write_text("\n".join(lines[:2]) + "\n")
        assert publish_trials(staging, shared) == 2
        assert shared.read_text().splitlines() == lines

    def test_terminates_a_killed_partial_shared_line(self, tmp_path):
        staging = tmp_path / "staging.jsonl"
        shared = tmp_path / "shared.jsonl"
        good = json.dumps({"trial": 0})
        staging.write_text(good + "\n")
        shared.write_text('{"trial": 0')  # torn write, no newline
        assert publish_trials(staging, shared) == 1
        out = shared.read_text().splitlines()
        # The torn line stays corrupt on its own; the good line lands
        # intact instead of merging into it.
        assert out == ['{"trial": 0', good]

    def test_missing_staging_publishes_nothing(self, tmp_path):
        assert publish_trials(
            tmp_path / "none.jsonl", tmp_path / "shared.jsonl"
        ) == 0


@pytest.mark.slow
class TestExecuteCell:
    def test_reclaim_does_not_stack_staging(self, tmp_path):
        cell = ONE_CELL.cells()[0]
        campaign_dir = tmp_path / "campaign"
        cache = str(tmp_path / "cache")
        first = execute_cell(cell, campaign_dir, cache)
        second = execute_cell(cell, campaign_dir, cache)
        staging = (
            campaign_dir / "cells" / cell.cell_id / "trials.jsonl"
        )
        assert len(staging.read_text().splitlines()) == 2
        assert first["published"] == 2
        assert second["published"] == 0
        for field in ("best_cycles", "default_cycles", "speedup",
                      "trial_count", "best_fingerprint", "schema"):
            assert first[field] == second[field]
