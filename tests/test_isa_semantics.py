"""Unit and property tests for the SIMD instruction semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import IsaError
from repro.isa import semantics
from repro.isa.instructions import VECTOR_LANES

int8_vectors = arrays(
    np.int8, (VECTOR_LANES,), elements=st.integers(-128, 127)
)
scalar4 = st.tuples(*([st.integers(-128, 127)] * 4))


class TestVmpy:
    @given(v=int8_vectors, s=scalar4)
    @settings(max_examples=50, deadline=None)
    def test_lane_formula(self, v, s):
        even, odd = semantics.vmpy(v, s)
        products = v.astype(np.int64) * np.tile(s, VECTOR_LANES // 4)
        assert (even == products[0::2].astype(np.int16)).all()
        assert (odd == products[1::2].astype(np.int16)).all()

    def test_figure1a_example(self):
        v = np.arange(128, dtype=np.int8)
        even, odd = semantics.vmpy(v, (2, 3, 5, 7))
        assert even[0] == 0 * 2
        assert odd[0] == 1 * 3
        assert even[1] == 2 * 5
        assert odd[1] == 3 * 7
        assert even[2] == 4 * 2  # scalar pattern repeats every 4 lanes

    def test_outputs_are_16_bit(self):
        even, odd = semantics.vmpy(
            np.full(128, -128, dtype=np.int8), (127,) * 4
        )
        assert even.dtype == np.int16
        assert even[0] == -128 * 127  # fits in 16 bits exactly

    def test_rejects_wrong_vector_size(self):
        with pytest.raises(IsaError):
            semantics.vmpy(np.zeros(64, dtype=np.int8), (1, 1, 1, 1))

    def test_rejects_wrong_scalar_count(self):
        with pytest.raises(IsaError):
            semantics.vmpy(np.zeros(128, dtype=np.int8), (1, 1))


class TestVmpa:
    @given(v0=int8_vectors, v1=int8_vectors, s=scalar4)
    @settings(max_examples=50, deadline=None)
    def test_lane_formula(self, v0, v1, s):
        even, odd = semantics.vmpa(v0, v1, s)
        a = v0.astype(np.int64)
        b = v1.astype(np.int64)
        assert (even == (a[0::2] * s[0] + b[0::2] * s[1])).all()
        assert (odd == (a[1::2] * s[2] + b[1::2] * s[3])).all()

    def test_accumulation(self):
        v = np.ones(128, dtype=np.int8)
        acc = (np.full(64, 10, np.int32), np.full(64, 20, np.int32))
        even, odd = semantics.vmpa(v, v, (1, 1, 2, 2), acc=acc)
        assert (even == 12).all()
        assert (odd == 24).all()


class TestVrmpy:
    @given(v=int8_vectors, s=scalar4)
    @settings(max_examples=50, deadline=None)
    def test_dot_product_formula(self, v, s):
        out = semantics.vrmpy(v.astype(np.int32), s)
        groups = v.astype(np.int64).reshape(32, 4)
        expected = (groups * np.asarray(s)).sum(axis=1)
        assert (out == expected).all()

    def test_accumulator_adds(self):
        v = np.ones(128, dtype=np.int32)
        first = semantics.vrmpy(v, (1, 2, 3, 4))
        second = semantics.vrmpy(v, (1, 2, 3, 4), acc=first)
        assert (second == 2 * first).all()

    def test_accumulator_shape_checked(self):
        with pytest.raises(IsaError):
            semantics.vrmpy(
                np.ones(128, dtype=np.int32),
                (1, 1, 1, 1),
                acc=np.zeros(16, dtype=np.int32),
            )


class TestVtmpyVmpye:
    def test_vtmpy_window(self):
        v0 = np.arange(128, dtype=np.int8)
        v1 = np.full(128, 1, dtype=np.int8)
        out = semantics.vtmpy(v0, v1, (1, 1, 1, 0))
        # out[i] = v[i] + v[i+1] + v[i+2] over the concatenated window
        assert out[0] == 0 + 1 + 2
        assert out[10] == 10 + 11 + 12

    def test_vmpye_even_lanes(self):
        v = np.arange(128, dtype=np.int8)
        out = semantics.vmpye(v, (3, 0, 0, 0))
        assert (out == v[0::2].astype(np.int32) * 3).all()


class TestElementwise:
    @given(a=int8_vectors, b=int8_vectors)
    @settings(max_examples=30, deadline=None)
    def test_vshuff_interleaves(self, a, b):
        out = semantics.vshuff(a, b)
        assert (out[0::2] == a).all()
        assert (out[1::2] == b).all()

    @given(a=int8_vectors, b=int8_vectors)
    @settings(max_examples=30, deadline=None)
    def test_vshuff_deinterleave_roundtrip(self, a, b):
        out = semantics.vshuff(a, b)
        assert (out[0::2] == a).all() and (out[1::2] == b).all()

    def test_vshuff_shape_mismatch(self):
        with pytest.raises(IsaError):
            semantics.vshuff(np.zeros(4), np.zeros(8))

    def test_vmax_vmin(self):
        a = np.array([1, -5, 3], dtype=np.int8)
        b = np.array([0, 7, 3], dtype=np.int8)
        assert (semantics.vmax(a, b) == [1, 7, 3]).all()
        assert (semantics.vmin(a, b) == [0, -5, 3]).all()

    def test_vadd_vsub(self):
        a = np.array([100, -100], dtype=np.int8)
        b = np.array([50, -50], dtype=np.int8)
        assert (semantics.vadd(a, b) == [-106, 106]).all()  # int8 wrap
        assert (semantics.vsub(a, b) == [50, -50]).all()


class TestVasr:
    @given(
        values=arrays(np.int32, (32,), elements=st.integers(-2**20, 2**20)),
        shift=st.integers(1, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_rounding_shift(self, values, shift):
        out = semantics.vasr(values, shift)
        expected = (values.astype(np.int64) + (1 << (shift - 1))) >> shift
        assert (out == expected.astype(np.int32)).all()

    def test_zero_shift_identity(self):
        values = np.array([1, -1, 100], dtype=np.int32)
        assert (semantics.vasr(values, 0) == values).all()

    def test_negative_shift_rejected(self):
        with pytest.raises(IsaError):
            semantics.vasr(np.zeros(4, dtype=np.int32), -1)


class TestSaturation:
    def test_saturate_int8(self):
        values = np.array([-1000, -128, 0, 127, 1000])
        out = semantics.saturate_to_int8(values)
        assert (out == [-128, -128, 0, 127, 127]).all()
        assert out.dtype == np.int8

    def test_saturate_uint8(self):
        values = np.array([-5, 0, 255, 300])
        out = semantics.saturate_to_uint8(values)
        assert (out == [0, 0, 255, 255]).all()

    def test_vsplat(self):
        out = semantics.vsplat(7, np.int8)
        assert out.shape == (128,)
        assert (out == 7).all()
        out16 = semantics.vsplat(-3, np.int16)
        assert out16.shape == (64,)
