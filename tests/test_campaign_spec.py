"""CampaignSpec validation, normalization and fingerprinting."""

import json

import pytest

from repro.campaign import CampaignSpec, CellKey, STRATEGY_ALIASES
from repro.errors import CampaignError

GOOD = {
    "models": ["wdsr_b", "mobilenet_v3"],
    "machines": ["hexagon698", "narrow64"],
    "strategies": ["random", "halving"],
    "trials": 4,
    "seed": 7,
}


class TestValidation:
    def test_round_trips_canonical_payload(self):
        spec = CampaignSpec.from_payload(GOOD)
        assert spec.to_payload() == GOOD

    def test_defaults_trials_and_seed(self):
        spec = CampaignSpec.from_payload({
            "models": ["wdsr_b"],
            "machines": ["hexagon698"],
            "strategies": ["grid"],
        })
        assert spec.trials == 8
        assert spec.seed == 0

    @pytest.mark.parametrize("field", ["models", "machines", "strategies"])
    def test_rejects_empty_axis(self, field):
        payload = {**GOOD, field: []}
        with pytest.raises(CampaignError):
            CampaignSpec.from_payload(payload)

    def test_rejects_unknown_model(self):
        with pytest.raises(CampaignError, match="unknown model"):
            CampaignSpec.from_payload({**GOOD, "models": ["gpt5"]})

    def test_rejects_unknown_machine(self):
        with pytest.raises(CampaignError, match="unknown machine"):
            CampaignSpec.from_payload({**GOOD, "machines": ["tpu"]})

    def test_rejects_unknown_strategy(self):
        with pytest.raises(CampaignError, match="unknown strategy"):
            CampaignSpec.from_payload({**GOOD, "strategies": ["bayes"]})

    def test_rejects_unknown_spec_field(self):
        with pytest.raises(CampaignError, match="unknown spec field"):
            CampaignSpec.from_payload({**GOOD, "budget": 10})

    def test_rejects_non_object_payload(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_payload(["wdsr_b"])

    @pytest.mark.parametrize("trials", [0, -1, 1.5, True, "4"])
    def test_rejects_bad_trials(self, trials):
        with pytest.raises(CampaignError):
            CampaignSpec.from_payload({**GOOD, "trials": trials})

    @pytest.mark.parametrize("seed", [1.5, True, "7"])
    def test_rejects_bad_seed(self, seed):
        with pytest.raises(CampaignError):
            CampaignSpec.from_payload({**GOOD, "seed": seed})

    def test_drops_duplicate_axis_entries(self):
        spec = CampaignSpec.from_payload({
            **GOOD, "models": ["wdsr_b", "wdsr_b", "mobilenet_v3"],
        })
        assert spec.models == ("wdsr_b", "mobilenet_v3")


class TestAliases:
    def test_shalving_is_halving(self):
        assert STRATEGY_ALIASES["shalving"] == "halving"
        spec = CampaignSpec.from_payload(
            {**GOOD, "strategies": ["shalving"]}
        )
        assert spec.strategies == ("halving",)

    def test_alias_and_canonical_share_a_fingerprint(self):
        a = CampaignSpec.from_payload({**GOOD, "strategies": ["shalving"]})
        b = CampaignSpec.from_payload({**GOOD, "strategies": ["halving"]})
        assert a.fingerprint == b.fingerprint

    def test_alias_collapsing_dedupes(self):
        spec = CampaignSpec.from_payload(
            {**GOOD, "strategies": ["halving", "shalving"]}
        )
        assert spec.strategies == ("halving",)


class TestFingerprint:
    def test_deterministic(self):
        assert (
            CampaignSpec.from_payload(GOOD).fingerprint
            == CampaignSpec.from_payload(GOOD).fingerprint
        )

    def test_sha256_shaped(self):
        fingerprint = CampaignSpec.from_payload(GOOD).fingerprint
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # hex or raise

    @pytest.mark.parametrize(
        "change",
        [
            {"models": ["wdsr_b"]},
            {"machines": ["hexagon698"]},
            {"strategies": ["grid"]},
            {"trials": 5},
            {"seed": 8},
        ],
    )
    def test_every_keyfield_moves_the_fingerprint(self, change):
        base = CampaignSpec.from_payload(GOOD)
        other = CampaignSpec.from_payload({**GOOD, **change})
        assert base.fingerprint != other.fingerprint


class TestCells:
    def test_grid_order_is_models_machines_strategies(self):
        spec = CampaignSpec.from_payload(GOOD)
        cells = spec.cells()
        assert len(cells) == 8
        assert cells[0] == CellKey("wdsr_b", "hexagon698", "random", 4, 7)
        assert [c.cell_id for c in cells[:3]] == [
            "wdsr_b--hexagon698--random",
            "wdsr_b--hexagon698--halving",
            "wdsr_b--narrow64--random",
        ]

    def test_cell_ids_unique(self):
        cells = CampaignSpec.from_payload(GOOD).cells()
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_cell_lookup(self):
        spec = CampaignSpec.from_payload(GOOD)
        key = spec.cell("wdsr_b--narrow64--halving")
        assert (key.model, key.machine, key.strategy) == (
            "wdsr_b", "narrow64", "halving"
        )
        with pytest.raises(CampaignError, match="not part of"):
            spec.cell("nope--nope--nope")

    def test_cell_payload_carries_all_keyfields(self):
        key = CampaignSpec.from_payload(GOOD).cells()[0]
        assert key.to_payload() == {
            "model": "wdsr_b",
            "machine": "hexagon698",
            "strategy": "random",
            "trials": 4,
            "seed": 7,
        }


class TestLoad:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(GOOD))
        assert CampaignSpec.load(path).to_payload() == GOOD

    def test_missing_file_is_structured(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.load(tmp_path / "nope.json")

    def test_bad_json_is_structured(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.load(path)
