"""Tests for the packing infrastructure: CFG, IDG, schedule validation."""

import pytest

from repro.core.packing.cfg import BasicBlock, build_cfg, kernel_block
from repro.core.packing.evaluate import validate_schedule
from repro.core.packing.idg import build_idg
from repro.errors import SchedulingError
from repro.isa.dependencies import DependencyKind
from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet
from tests.conftest import stream_program


class TestCfg:
    def test_straight_line_is_one_block(self):
        program = stream_program()
        blocks = build_cfg(program)
        assert len(blocks) == 1
        assert len(blocks[0]) == len(program)

    def test_branches_split_blocks(self):
        program = [
            Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r0",)),
            Instruction(Opcode.LOOP, srcs=("r_count",)),
            Instruction(Opcode.VSTORE, srcs=("v0", "r1")),
        ]
        blocks = build_cfg(program)
        assert [len(b) for b in blocks] == [2, 1]
        assert blocks[0].terminator.opcode is Opcode.LOOP

    def test_kernel_block_is_largest(self):
        program = [
            Instruction(Opcode.NOP),
            Instruction(Opcode.JUMP),
            Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r0",)),
            Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0")),
            Instruction(Opcode.VSTORE, srcs=("v1", "r1")),
        ]
        blocks = build_cfg(program)
        assert len(kernel_block(blocks)) == 3

    def test_kernel_block_of_empty(self):
        assert len(kernel_block([])) == 0


class TestIdg:
    def test_edges_carry_classification(self):
        program = stream_program(operands=2)
        idg = build_idg(program)
        load0, load1, add = program[0], program[1], program[2]
        assert idg.edge_kind(load0, add) is DependencyKind.SOFT
        assert idg.edge_kind(load0, load1) is DependencyKind.NONE

    def test_order_is_depth_from_entry(self):
        program = stream_program(operands=2)
        idg = build_idg(program)
        assert idg.order_of(program[0]) == 0       # load
        assert idg.order_of(program[2]) == 1       # add
        assert idg.order_of(program[3]) > 1        # shuffle

    def test_pred_count(self):
        program = stream_program(operands=3)
        idg = build_idg(program)
        add2 = program[4]  # second add: depends on first add and load
        assert idg.pred_count(add2) >= 2

    def test_critical_path_starts_at_entry_and_descends(self):
        program = stream_program()
        idg = build_idg(program)
        path = idg.critical_path()
        assert idg.order_of(path[0]) == 0
        for earlier, later in zip(path, path[1:]):
            assert later in idg.successors(earlier)

    def test_removal_shrinks_remaining(self):
        program = stream_program()
        idg = build_idg(program)
        idg.remove(program[0])
        assert len(idg) == len(program) - 1
        assert program[0] not in idg
        # Removal is idempotent.
        idg.remove(program[0])
        assert len(idg) == len(program) - 1

    def test_critical_path_ignores_removed(self):
        program = stream_program()
        idg = build_idg(program)
        tail = idg.critical_path()[-1]
        idg.remove(tail)
        assert tail not in idg.critical_path()


class TestValidateSchedule:
    def test_detects_missing_instruction(self):
        program = stream_program()
        packets = [Packet([program[0]])]
        with pytest.raises(SchedulingError):
            validate_schedule(packets, program)

    def test_detects_double_packing(self):
        program = [Instruction(Opcode.NOP), Instruction(Opcode.NOP)]
        packets = [Packet([program[0]]), Packet([program[0]])]
        with pytest.raises(SchedulingError):
            validate_schedule(packets, program)

    def test_detects_reordered_dependency(self):
        load = Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r0",))
        use = Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        packets = [Packet([use]), Packet([load])]
        with pytest.raises(SchedulingError):
            validate_schedule(packets, [load, use])

    def test_accepts_legal_schedule(self):
        load = Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r0",))
        use = Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        validate_schedule([Packet([load]), Packet([use])], [load, use])

    def test_accepts_soft_pair_in_one_packet(self):
        load = Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r0",))
        use = Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
        validate_schedule([Packet([load, use])], [load, use])
