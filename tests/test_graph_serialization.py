"""Tests for graph JSON serialization."""

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.execute import ReferenceExecutor
from repro.graph.passes import fuse_elementwise
from repro.graph.serialization import (
    FORMAT_VERSION,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import build_model
from tests.conftest import random_dag, small_cnn


class TestRoundtrip:
    def test_structure_preserved(self):
        graph = small_cnn()
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.operator_count() == graph.operator_count()
        assert clone.total_macs() == graph.total_macs()
        for a, b in zip(graph, clone):
            assert a.name == b.name
            assert a.op_type == b.op_type
            assert a.inputs == b.inputs
            assert a.output_shape == b.output_shape

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dags_roundtrip(self, seed):
        graph = random_dag(seed)
        clone = graph_from_dict(graph_to_dict(graph))
        assert [n.name for n in clone] == [n.name for n in graph]

    def test_semantics_preserved(self):
        graph = small_cnn()
        clone = graph_from_dict(graph_to_dict(graph))
        feed = {"image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))}
        a = ReferenceExecutor(graph, seed=3).run(feed)
        b = ReferenceExecutor(clone, seed=3).run(feed)
        for key in a:
            assert np.allclose(a[key], b[key])

    def test_fused_activation_preserved(self):
        graph = fuse_elementwise(small_cnn())
        clone = graph_from_dict(graph_to_dict(graph))
        fused = [
            n.op.fused_activation
            for n in clone
            if n.op.fused_activation is not None
        ]
        assert fused

    def test_model_zoo_roundtrips(self):
        graph = build_model("wdsr_b")
        clone = graph_from_dict(graph_to_dict(graph))
        assert clone.total_macs() == graph.total_macs()

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "model.json"
        save_graph(small_cnn(), path)
        clone = load_graph(path)
        assert clone.operator_count() == small_cnn().operator_count()
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION


class TestErrors:
    def test_unknown_version_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format_version": 999, "nodes": []})

    def test_unknown_operator_rejected(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [{"name": "x", "op": {"type": "Alien"}, "inputs": []}],
        }
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_unknown_attribute_rejected(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1], "bogus": 1},
                    "inputs": [],
                }
            ],
        }
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_non_object_payload_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict([1, 2, 3])

    def test_nodes_must_be_a_list(self):
        with pytest.raises(GraphError):
            graph_from_dict(
                {"format_version": FORMAT_VERSION, "nodes": {"a": 1}}
            )

    def test_node_entry_must_be_an_object(self):
        with pytest.raises(GraphError):
            graph_from_dict(
                {"format_version": FORMAT_VERSION, "nodes": ["nope"]}
            )

    def test_edge_to_nonexistent_id_rejected(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {"name": "r", "op": {"type": "ReLU"}, "inputs": [5]},
            ],
        }
        with pytest.raises(GraphError) as excinfo:
            graph_from_dict(payload)
        assert "nonexistent" in str(excinfo.value)
        assert excinfo.value.node == "r"

    def test_forward_edge_rejected(self):
        # Node ids are assigned in file order: an edge may only point
        # at an earlier entry.
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [1],
                },
                {"name": "r", "op": {"type": "ReLU"}, "inputs": [0]},
            ],
        }
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_duplicate_node_names_rejected(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {"name": "x", "op": {"type": "ReLU"}, "inputs": [0]},
            ],
        }
        with pytest.raises(GraphError) as excinfo:
            graph_from_dict(payload)
        assert "duplicate" in str(excinfo.value)

    def test_malformed_attribute_value_rejected(self):
        # A well-named attribute with a junk value surfaces as a
        # GraphError, not a bare TypeError from the op constructor.
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {
                    "name": "c",
                    "op": {
                        "type": "Conv2D",
                        "out_channels": 8,
                        "kernel": "huge",
                    },
                    "inputs": [0],
                },
            ],
        }
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_shapes_revalidated_on_load(self):
        # A hand-edited file with inconsistent shapes must fail.
        payload = {
            "format_version": FORMAT_VERSION,
            "nodes": [
                {
                    "name": "x",
                    "op": {"type": "Input", "shape": [1, 4]},
                    "inputs": [],
                },
                {
                    "name": "bad",
                    "op": {"type": "Reshape", "target": [3, 3]},
                    "inputs": [0],
                },
            ],
        }
        with pytest.raises(Exception):
            graph_from_dict(payload)
