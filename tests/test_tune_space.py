"""Tests for the autotuner's typed search spaces (repro.tune.space)."""

import random

import pytest

from repro.compiler import CompilerOptions
from repro.core.packing.sda import SdaConfig
from repro.core.unroll import UnrollConfig
from repro.errors import TuningError
from repro.tune import (
    DEFAULT_TRIAL_CONFIG,
    Choice,
    ConfigSpace,
    TrialConfig,
    config_from_assignment,
    default_space,
    partition_space,
    sda_space,
    unroll_space,
)


class TestChoice:
    def test_values_become_tuple(self):
        choice = Choice("sda.w", [0.5, 0.7])
        assert choice.values == (0.5, 0.7)
        assert len(choice) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(TuningError):
            Choice("", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(TuningError):
            Choice("sda.w", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(TuningError, match="repeats"):
            Choice("sda.w", (0.5, 0.5))


class TestConfigSpace:
    def _space(self):
        return ConfigSpace([
            Choice("sda.w", (0.5, 0.7)),
            Choice("compiler.max_operators", (9, 13, 17)),
        ])

    def test_size_is_product(self):
        assert self._space().size == 6

    def test_empty_space_rejected(self):
        with pytest.raises(TuningError):
            ConfigSpace([])

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(TuningError, match="duplicate"):
            ConfigSpace([
                Choice("sda.w", (0.5,)),
                Choice("sda.w", (0.7,)),
            ])

    def test_enumeration_is_nested_loop_order(self):
        # First axis most significant: the last axis varies fastest.
        assignments = list(self._space())
        assert assignments[0] == {
            "sda.w": 0.5, "compiler.max_operators": 9,
        }
        assert assignments[1]["compiler.max_operators"] == 13
        assert assignments[3]["sda.w"] == 0.7
        assert len(assignments) == 6

    def test_assignment_at_bounds(self):
        space = self._space()
        with pytest.raises(TuningError):
            space.assignment_at(-1)
        with pytest.raises(TuningError):
            space.assignment_at(space.size)

    def test_sampling_is_deterministic_in_seed(self):
        space = self._space()
        draws_a = [space.sample(random.Random(3)) for _ in range(1)]
        draws_b = [space.sample(random.Random(3)) for _ in range(1)]
        assert draws_a == draws_b

    def test_subspace_preserves_order(self):
        sub = self._space().subspace(["compiler.max_operators"])
        assert [c.name for c in sub.choices] == [
            "compiler.max_operators"
        ]

    def test_subspace_unknown_axis_rejected(self):
        with pytest.raises(TuningError, match="unknown axes"):
            self._space().subspace(["nope"])


class TestTrialConfig:
    def test_defaults_match_paper_constants(self):
        config = TrialConfig()
        assert config.sda == SdaConfig()
        assert config.unroll == UnrollConfig()
        assert config.max_operators == 13

    def test_payload_round_trip(self):
        config = TrialConfig(
            sda=SdaConfig(w=0.5, soft_penalty=2.0),
            unroll=UnrollConfig(skinny_seed=(8, 4)),
            max_operators=17,
        )
        assert TrialConfig.from_payload(config.to_payload()) == config

    def test_fingerprint_stable_and_content_addressed(self):
        a = TrialConfig()
        b = TrialConfig()
        assert a.fingerprint == b.fingerprint
        changed = TrialConfig(max_operators=17)
        assert changed.fingerprint != a.fingerprint

    def test_apply_threads_all_knobs(self):
        config = TrialConfig(
            sda=SdaConfig(w=0.5),
            unroll=UnrollConfig(skinny_seed=(8, 4)),
            max_operators=9,
        )
        options = config.apply(CompilerOptions(cache_dir="/tmp/x"))
        assert options.sda_config == config.sda
        assert options.unroll_config == config.unroll
        assert options.max_operators == 9
        assert options.cache_dir == "/tmp/x"  # base knobs survive
        assert options.tuned is False  # applying never re-triggers lookup

    def test_wrong_types_rejected(self):
        with pytest.raises(TuningError):
            TrialConfig(sda="sda")
        with pytest.raises(TuningError):
            TrialConfig(unroll=(8, 2))
        with pytest.raises(TuningError):
            TrialConfig(max_operators=1)

    def test_malformed_payload_rejected(self):
        with pytest.raises(TuningError, match="malformed"):
            TrialConfig.from_payload({"sda": {}})


class TestConfigFromAssignment:
    def test_folds_dotted_axes(self):
        config = config_from_assignment({
            "sda.w": 0.5,
            "unroll.skinny_seed": (8, 4),
            "compiler.max_operators": 17,
        })
        assert config.sda.w == 0.5
        assert config.sda.soft_penalty == \
            DEFAULT_TRIAL_CONFIG.sda.soft_penalty
        assert config.unroll.skinny_seed == (8, 4)
        assert config.max_operators == 17

    def test_unknown_axis_rejected(self):
        with pytest.raises(TuningError, match="unknown axis"):
            config_from_assignment({"sda.nope": 1.0})
        with pytest.raises(TuningError, match="unknown axis"):
            config_from_assignment({"mystery.w": 1.0})

    def test_invalid_value_becomes_tuning_error(self):
        with pytest.raises(TuningError, match="invalid assignment"):
            config_from_assignment({"sda.soft_penalty": -1.0})


class TestStockSpaces:
    def test_default_space_composes_all_axes(self):
        space = default_space()
        names = {c.name for c in space.choices}
        assert "sda.w" in names
        assert "unroll.skinny_seed" in names
        assert "compiler.max_operators" in names
        assert space.size == (
            ConfigSpace(sda_space()).size
            * ConfigSpace(unroll_space()).size
            * ConfigSpace(partition_space()).size
        )

    def test_every_default_point_is_a_valid_config(self):
        # Spot-check a deterministic sample of the stock space: every
        # assignment must fold into a constructible TrialConfig.
        space = default_space()
        rng = random.Random(0)
        for _ in range(25):
            config = config_from_assignment(space.sample(rng))
            assert isinstance(config, TrialConfig)
