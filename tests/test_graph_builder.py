"""Coverage tests for the fluent graph builder API."""

import pytest

from repro.graph.builder import GraphBuilder


class TestBuilderCoverage:
    def test_every_builder_method_produces_valid_nodes(self):
        b = GraphBuilder("coverage")
        x = b.input((1, 8, 16, 16), name="x")
        y = b.conv2d(x, 8)
        y = b.depthwise_conv2d(y)
        y = b.relu(y)
        y = b.relu6(y)
        y = b.hardswish(y)
        y = b.sigmoid(y)
        y = b.tanh(y)
        y = b.gelu(y)
        y = b.batch_norm(y)
        y = b.instance_norm(y)
        skip = b.conv2d(x, 8, kernel=1, padding=0)
        y = b.add(y, skip)
        y = b.sub(y, skip)
        y = b.mul(y, skip)
        y = b.div(y, skip)
        y = b.pow(y, 2.0)
        y = b.max_pool(y)
        y = b.avg_pool(b.pad(y, 1), kernel=3, stride=1)
        up = b.resize(y, scale=2)
        up = b.conv2d(up, 4)
        shuffled = b.depth_to_space(up, block=2)
        t = b.transpose_conv2d(shuffled, 4, kernel=2, stride=2, padding=0)
        cat = b.concat([t, t], axis=1)
        sl = b.slice(cat, axis=1, begin=0, length=2)
        g_mean = b.global_avg_pool(sl)
        r = b.reshape(g_mean, (1, 2))
        d = b.dense(r, 8)
        sm = b.softmax(d)
        graph = b.build()
        graph.validate()
        assert graph.operator_count() > 25

    def test_sequence_side_methods(self):
        b = GraphBuilder("seq")
        ids = b.input((1, 12), name="ids")
        e = b.embedding(ids, vocab=100, dim=16)
        e = b.layer_norm(e)
        e = b.matmul(e, weight_shape=(16, 16))
        q = b.reshape(e, (1, 12, 4, 4))
        q = b.transpose(q, (0, 2, 1, 3))
        k = b.transpose(q, (0, 1, 3, 2))
        scores = b.matmul(q, k)
        scores = b.softmax(scores)
        mean = b.reduce_mean(scores, axis=-1)
        graph = b.build()
        assert graph.output_nodes()[0].output_shape == (1, 4, 12, 1)

    def test_shape_of_matches_graph(self):
        b = GraphBuilder("s")
        x = b.input((1, 3, 8, 8))
        c = b.conv2d(x, 5)
        assert b.shape_of(c) == (1, 5, 8, 8)

    def test_matmul_transpose_b(self):
        b = GraphBuilder("t")
        a = b.input((4, 8), name="a")
        w = b.input((6, 8), name="w")
        out = b.matmul(a, w, transpose_b=True)
        assert b.shape_of(out) == (4, 6)

    def test_constant_handle(self):
        b = GraphBuilder("c")
        c = b.constant((3, 3), name="weights")
        assert b.shape_of(c) == (3, 3)
