"""Fault-injection suite: every fault is caught by its intended verifier.

Each :class:`~repro.verify.faultinject.Fault` corrupts one stage's
artefact the way a real compiler bug would; the parametrized matrix
below asserts the *intended* verifier raises the *exact* expected error
type with structured context.  The clean-compile tests prove the
verifiers produce zero false positives across the whole model zoo.
"""

import pytest

from repro.compiler import CompilerOptions, GCD2Compiler
from repro.errors import ReproError, VerificationError
from repro.models import build_model, model_names
from repro.verify.faultinject import FAULTS, hooks_for, inject
from tests.conftest import small_cnn


@pytest.fixture
def compiler():
    return GCD2Compiler(CompilerOptions())


class TestFaultMatrix:
    @pytest.mark.parametrize("fault_name", sorted(FAULTS))
    def test_fault_caught_by_intended_verifier(self, fault_name, compiler):
        fault = FAULTS[fault_name]
        with inject(compiler, fault):
            with pytest.raises(fault.expected) as excinfo:
                compiler.compile(small_cnn())
        error = excinfo.value
        # Exact type, not just a superclass of it.
        assert type(error) is fault.expected
        assert error.stage == fault.stage
        # The structured rendering names the stage.
        assert f"[{fault.stage}]" in str(error)

    @pytest.mark.parametrize("fault_name", sorted(FAULTS))
    def test_faults_escape_when_verification_is_off(
        self, fault_name
    ):
        # With verify=False the hooks still corrupt the artefact but no
        # checker stands in the way: the compile either silently
        # succeeds with a corrupted model or dies downstream — either
        # way, no VerificationError fires.  This is what the verifiers
        # buy us.
        fault = FAULTS[fault_name]
        compiler = GCD2Compiler(
            CompilerOptions(verify=False),
            fault_hooks=hooks_for(fault),
        )
        try:
            compiler.compile(small_cnn())
        except VerificationError:  # pragma: no cover - would be a bug
            pytest.fail("verifier ran despite verify=False")
        except Exception:
            pass  # downstream crash is acceptable without verification

    def test_registry_covers_at_least_eight_distinct_faults(self):
        assert len(FAULTS) >= 8
        stages = {fault.stage for fault in FAULTS.values()}
        assert stages >= {
            "graph", "selection", "unroll", "lowering", "packing",
            "profile",
        }

    def test_hooks_for_rejects_stage_collision(self):
        with pytest.raises(ValueError):
            hooks_for(
                FAULTS["selection_cost_nan"],
                FAULTS["selection_drop_plan"],
            )

    def test_inject_restores_previous_hooks(self, compiler):
        with inject(compiler, FAULTS["selection_cost_nan"]):
            assert "selection" in compiler.fault_hooks
        assert compiler.fault_hooks == {}


class TestCleanZoo:
    """Zero false positives: every zoo model compiles clean and strict."""

    @pytest.mark.parametrize("name", model_names())
    def test_zoo_model_compiles_strict_with_no_fallbacks(self, name):
        options = CompilerOptions(strict=True, verify=True)
        compiled = GCD2Compiler(options).compile(build_model(name))
        assert compiled.diagnostics.fallbacks == []
        assert not compiled.diagnostics.degraded
        assert compiled.profile.cycles > 0

    def test_verified_compile_matches_unverified(self):
        graph_a = small_cnn("a")
        graph_b = small_cnn("b")
        verified = GCD2Compiler(CompilerOptions(verify=True)).compile(
            graph_a
        )
        plain = GCD2Compiler(CompilerOptions(verify=False)).compile(
            graph_b
        )
        assert verified.total_cycles == plain.total_cycles
        assert verified.selection.cost == plain.selection.cost

    def test_diagnostics_record_stage_timings(self):
        compiled = GCD2Compiler().compile(small_cnn())
        stages = set(compiled.diagnostics.stage_seconds)
        assert stages == {
            "graph", "selection", "unroll", "lowering", "packing",
            "profile",
        }
        assert set(compiled.diagnostics.verifier_seconds) == stages
        summary = "\n".join(compiled.diagnostics.summary_lines())
        assert "fallbacks: none" in summary


class TestErrorContext:
    def test_fault_errors_carry_node_context(self, compiler):
        with inject(compiler, FAULTS["selection_drop_plan"]):
            with pytest.raises(ReproError) as excinfo:
                compiler.compile(small_cnn())
        error = excinfo.value
        assert error.node is not None
        assert error.details.get("solver")
