"""Tests for the software-pipelining (modulo scheduling) extension."""

import pytest

from repro.codegen.elementwise import emit_elementwise_body
from repro.codegen.matmul import emit_matmul_body
from repro.core.packing.swp import (
    PipelinedSchedule,
    modulo_schedule,
    pipelined_speedup,
    recurrence_mii,
    resource_mii,
)
from repro.errors import SchedulingError
from repro.isa.dependencies import DependencyKind, classify_dependency
from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import MAX_PACKET_SLOTS, RESOURCE_LIMITS
from repro.isa.instructions import ResourceClass
from tests.conftest import stream_program


def _assert_legal(schedule: PipelinedSchedule, body):
    scheduled = set(schedule.start_cycle)
    real = [
        i for i in body if i.opcode not in (Opcode.LOOP, Opcode.JUMP)
    ]
    assert scheduled == {i.uid for i in real}
    for row, members in enumerate(schedule.slots):
        assert len(members) <= MAX_PACKET_SLOTS
        by_resource = {}
        for inst in members:
            by_resource[inst.resource] = by_resource.get(inst.resource, 0) + 1
            assert schedule.start_cycle[inst.uid] % schedule.ii == row
        for resource, count in by_resource.items():
            assert count <= RESOURCE_LIMITS[resource]
        stores = sum(1 for i in members if i.spec.is_store)
        assert stores <= 1
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert classify_dependency(a, b) is not DependencyKind.HARD
                assert classify_dependency(b, a) is not DependencyKind.HARD
    # Dependences respected in absolute start cycles.
    from repro.core.packing.idg import build_idg

    idg = build_idg(real)
    for inst in real:
        for pred, kind in idg.predecessors(inst).items():
            gap = pred.latency if kind is DependencyKind.HARD else 1
            assert (
                schedule.start_cycle[inst.uid]
                >= schedule.start_cycle[pred.uid] + gap
            )


class TestMiiBounds:
    def test_resource_mii_counts_limited_units(self):
        stores = [
            Instruction(Opcode.VSTORE, srcs=(f"v{i}", "r"), imms=(i,))
            for i in range(3)
        ]
        # VMEM limit is 2, but single-store rule drives scheduling;
        # resource bound alone gives ceil(3/2) = 2.
        assert resource_mii(stores) >= 2

    def test_recurrence_mii_self_accumulator(self):
        mac = Instruction(
            Opcode.VRMPY,
            dests=("v_acc",),
            srcs=("v_in", "v_acc"),
            imms=(1, 1, 1, 1),
        )
        assert recurrence_mii([mac]) == mac.latency

    def test_trivial_body(self):
        assert resource_mii([Instruction(Opcode.NOP)]) == 1


class TestModuloSchedule:
    @pytest.mark.parametrize(
        "body_factory",
        [
            lambda: stream_program(),
            lambda: emit_elementwise_body("Add", 3, unroll=2),
            lambda: emit_matmul_body(Opcode.VRMPY, 2, 2, include_epilogue=True),
            lambda: emit_matmul_body(Opcode.VMPY, 1, 2, include_epilogue=True),
        ],
    )
    def test_produces_legal_kernel(self, body_factory):
        body = body_factory()
        schedule = modulo_schedule(body)
        _assert_legal(schedule, body)

    def test_ii_at_least_mii(self):
        body = emit_matmul_body(Opcode.VRMPY, 4, 4)
        schedule = modulo_schedule(body)
        real = [
            i for i in body if i.opcode not in (Opcode.LOOP, Opcode.JUMP)
        ]
        assert schedule.ii >= resource_mii(real)

    def test_overlap_beats_flat_schedule(self):
        # The point of pipelining: steady-state cycles/iteration drop
        # below the non-overlapped packed schedule.
        body = emit_matmul_body(Opcode.VRMPY, 2, 2, include_epilogue=True)
        schedule, speedup = pipelined_speedup(body)
        assert speedup > 1.5

    def test_stage_depth_reported(self):
        body = emit_matmul_body(Opcode.VRMPY, 2, 2)
        schedule = modulo_schedule(body)
        assert schedule.stages >= 1

    def test_empty_body(self):
        schedule = modulo_schedule(
            [Instruction(Opcode.LOOP, srcs=("r_count",))]
        )
        assert schedule.start_cycle == {}

    def test_infeasible_ii_cap_raises(self):
        body = emit_matmul_body(Opcode.VRMPY, 2, 2)
        with pytest.raises(SchedulingError):
            modulo_schedule(body, max_ii=0)
