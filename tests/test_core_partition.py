"""Unit tests for cost-optimal graph partitioning (Definition IV.1)."""

import pytest

from repro.core.cost import CostModel
from repro.core.partition import (
    desirable_partition_edges,
    is_desirable_edge,
    partition,
)
from repro.graph.builder import GraphBuilder
from tests.conftest import random_dag, small_cnn


class TestDesirableEdges:
    def test_layout_transform_consumer_is_desirable(self):
        b = GraphBuilder("t")
        x = b.input((1, 8, 4, 4), name="x")
        c = b.conv2d(x, 8, name="conv")
        b.reshape(c, (1, -1), name="flatten")
        g = b.build()
        model = CostModel()
        conv_id = [n.node_id for n in g if n.name == "conv"][0]
        reshape_id = [n.node_id for n in g if n.name == "flatten"][0]
        assert is_desirable_edge(g, model, conv_id, reshape_id)

    def test_multi_predecessor_consumer_not_desirable(self):
        b = GraphBuilder("t")
        x = b.input((1, 8, 4, 4), name="x")
        a = b.conv2d(x, 8, name="a")
        c = b.conv2d(x, 8, name="c")
        s = b.add(a, c, name="sum")
        g = b.build()
        model = CostModel()
        a_id = [n.node_id for n in g if n.name == "a"][0]
        s_id = [n.node_id for n in g if n.name == "sum"][0]
        assert not is_desirable_edge(g, model, a_id, s_id)

    def test_transparent_producer_not_desirable(self):
        b = GraphBuilder("t")
        x = b.input((1, 8, 4, 4), name="x")
        r = b.relu(x, name="r")
        b.conv2d(r, 8, name="conv")
        g = b.build()
        model = CostModel()
        r_id = [n.node_id for n in g if n.name == "r"][0]
        c_id = [n.node_id for n in g if n.name == "conv"][0]
        assert not is_desirable_edge(g, model, r_id, c_id)

    def test_edge_listing_subset_of_edges(self):
        g = small_cnn()
        model = CostModel()
        edges = set(g.edges())
        for edge in desirable_partition_edges(g, model):
            assert edge in edges


class TestPartition:
    @pytest.mark.parametrize("seed", range(4))
    def test_partitions_are_a_disjoint_cover(self, seed):
        g = random_dag(seed)
        parts = partition(g, CostModel(), max_operators=5)
        seen = [nid for part in parts for nid in part]
        assert sorted(seen) == sorted(n.node_id for n in g)
        assert len(seen) == len(set(seen))

    @pytest.mark.parametrize("budget", [1, 3, 5, 13])
    def test_budget_respected(self, budget):
        g = small_cnn()
        for part in partition(g, CostModel(), max_operators=budget):
            assert len(part) <= budget

    def test_partitions_topologically_ordered(self):
        g = small_cnn()
        parts = partition(g, CostModel(), max_operators=4)
        firsts = [part[0] for part in parts]
        assert firsts == sorted(firsts)

    def test_members_in_topological_order(self):
        g = small_cnn()
        for part in partition(g, CostModel(), max_operators=13):
            assert part == sorted(part)

    def test_larger_budget_fewer_partitions(self):
        g = small_cnn()
        model = CostModel()
        small = partition(g, model, max_operators=2)
        large = partition(g, model, max_operators=13)
        assert len(large) <= len(small)
