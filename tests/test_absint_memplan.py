"""Memory-arena planner and its independent static verifier."""

import dataclasses

import pytest

from repro.absint.liveness import tensor_liveness
from repro.absint.memplan import (
    ALIGNMENT,
    ArenaSlot,
    MemoryPlan,
    plan_memory,
    plannable,
    tensor_bytes,
    verify_memory_plan,
)
from repro.graph import ops
from repro.models import build_model
from tests.conftest import chain_graph, random_dag, small_cnn


class TestPlanner:
    def test_plan_verifies_clean(self):
        graph = small_cnn()
        plan = plan_memory(graph)
        assert verify_memory_plan(graph, plan) == []
        assert plan.arena_size > 0
        assert plan.total_bytes >= plan.arena_size
        assert plan.reuse_factor >= 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags_verify_clean(self, seed):
        graph = random_dag(seed)
        assert verify_memory_plan(graph, plan_memory(graph)) == []

    @pytest.mark.parametrize(
        "name", ["mobilenet_v3", "tinybert", "conformer"]
    )
    def test_zoo_plans_verify_clean(self, name):
        graph = build_model(name)
        plan = plan_memory(graph)
        assert verify_memory_plan(graph, plan) == []
        # Real models reuse memory substantially.
        assert plan.reuse_factor > 2.0

    def test_slots_are_aligned(self):
        plan = plan_memory(small_cnn())
        for slot in plan.slots.values():
            assert slot.offset % ALIGNMENT == 0
            assert slot.size == tensor_bytes(
                small_cnn().node(slot.node_id)
            )

    def test_excludes_inputs_outputs_and_unused(self):
        graph = small_cnn()
        lv = tensor_liveness(graph)
        plan = plan_memory(graph, lv)
        for node in graph:
            if isinstance(node.op, (ops.Input, ops.Constant)):
                assert node.node_id not in plan.slots
            if node.node_id in lv.keep:
                assert node.node_id not in plan.slots
            assert plannable(node, lv) == (node.node_id in plan.slots)

    def test_output_never_aliases_inputs(self):
        # Allocate-before-free: a node's slot must not overlap any of
        # its own inputs' slots, whatever their liveness says.
        graph = build_model("mobilenet_v3")
        plan = plan_memory(graph)
        for node in graph:
            slot = plan.slots.get(node.node_id)
            if slot is None:
                continue
            for input_id in node.inputs:
                other = plan.slots.get(input_id)
                if other is None:
                    continue
                disjoint = (
                    slot.offset + slot.size <= other.offset
                    or other.offset + other.size <= slot.offset
                )
                assert disjoint, (
                    f"{slot.name} output aliases input {other.name}"
                )


def _corrupt(plan: MemoryPlan, node_id: int, **changes) -> MemoryPlan:
    slots = dict(plan.slots)
    slots[node_id] = dataclasses.replace(slots[node_id], **changes)
    return MemoryPlan(
        arena_size=plan.arena_size,
        slots=slots,
        total_bytes=plan.total_bytes,
    )


class TestVerifier:
    """The checker catches corrupted plans it did not produce."""

    @pytest.fixture()
    def graph_and_plan(self):
        graph = small_cnn()
        plan = plan_memory(graph)
        assert len(plan.slots) >= 2
        return graph, plan

    def test_overlap_is_mp001(self, graph_and_plan):
        graph, plan = graph_and_plan
        ids = sorted(plan.slots)
        a, b = ids[0], ids[1]
        bad = _corrupt(
            plan, b, offset=plan.slots[a].offset
        )
        findings = verify_memory_plan(graph, bad)
        assert any(f.rule_id == "LINT-MP001" for f in findings)

    def test_undersized_slot_is_mp002(self, graph_and_plan):
        graph, plan = graph_and_plan
        victim = sorted(plan.slots)[0]
        bad = _corrupt(
            plan, victim, size=plan.slots[victim].size - 8
        )
        findings = verify_memory_plan(graph, bad)
        assert any(f.rule_id == "LINT-MP002" for f in findings)

    def test_dropped_slot_is_mp003(self, graph_and_plan):
        graph, plan = graph_and_plan
        slots = dict(plan.slots)
        dropped = slots.pop(sorted(slots)[0])
        bad = MemoryPlan(
            arena_size=plan.arena_size,
            slots=slots,
            total_bytes=plan.total_bytes,
        )
        findings = verify_memory_plan(graph, bad)
        mp3 = [f for f in findings if f.rule_id == "LINT-MP003"]
        assert any(
            f.details.get("node_id") == dropped.node_id
            or f.location.node == dropped.name
            for f in mp3
        )

    def test_unknown_node_is_mp003(self, graph_and_plan):
        graph, plan = graph_and_plan
        slots = dict(plan.slots)
        slots[99999] = ArenaSlot(
            node_id=99999,
            name="ghost",
            offset=0,
            size=64,
            birth=0,
            death=1,
        )
        bad = MemoryPlan(
            arena_size=plan.arena_size,
            slots=slots,
            total_bytes=plan.total_bytes,
        )
        findings = verify_memory_plan(graph, bad)
        assert any(
            f.rule_id == "LINT-MP003"
            and f.details.get("node_id") == 99999
            for f in findings
        )

    def test_slot_past_arena_is_mp003(self, graph_and_plan):
        graph, plan = graph_and_plan
        victim = sorted(plan.slots)[0]
        bad = _corrupt(
            plan, victim, offset=plan.arena_size
        )
        findings = verify_memory_plan(graph, bad)
        assert any(f.rule_id == "LINT-MP003" for f in findings)

    def test_dict_round_trip(self, graph_and_plan):
        _, plan = graph_and_plan
        payload = plan.to_dict()
        assert payload["arena_size"] == plan.arena_size
        assert len(payload["slots"]) == len(plan.slots)
        assert payload["reuse_factor"] == round(plan.reuse_factor, 3)
