"""Arena-backed batch execution: bit-identity, reuse, fault seams."""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.errors import SimulationError
from repro.harness import example_feeds
from repro.runtime import InferenceEngine, QuantizedExecutor
from repro.verify.runtime import verify_engine_parity
from tests.conftest import chain_graph, random_dag, small_cnn


def _engine_pair(graph, requests=4, **kwargs):
    """(compiled, calibration, feeds, dict-engine, arena-engine)."""
    compiled = compile_model(graph)
    executor = QuantizedExecutor(compiled, seed=0, kernel_mac_limit=0)
    calibration = executor.calibrate(
        example_feeds(compiled.graph, count=2, seed=99)
    )
    feeds = example_feeds(compiled.graph, count=requests, seed=7)
    plain = InferenceEngine(
        compiled, calibration, seed=0, kernel_mac_limit=0, **kwargs
    )
    arena = InferenceEngine(
        compiled,
        calibration,
        seed=0,
        kernel_mac_limit=0,
        arena=True,
        **kwargs,
    )
    return compiled, calibration, feeds, plain, arena


class TestBitIdentity:
    def test_small_cnn_outputs_match_exactly(self):
        _, _, feeds, plain, arena = _engine_pair(small_cnn())
        try:
            expected = plain.run_batch(feeds)
            observed = arena.run_batch(feeds)
            assert len(expected) == len(observed)
            for exp, obs in zip(expected, observed):
                assert set(exp) == set(obs)
                for key in exp:
                    assert np.array_equal(exp[key], obs[key]), key
            assert arena.diagnostics.arena_batches == 1
            assert plain.diagnostics.arena_batches == 0
        finally:
            plain.close()
            arena.close()

    def test_parity_gate_passes_in_arena_mode(self):
        compiled, _, feeds, plain, arena = _engine_pair(small_cnn())
        plain.close()
        try:
            verify_engine_parity(arena, feeds)
        finally:
            arena.close()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dags_match(self, seed):
        _, _, feeds, plain, arena = _engine_pair(
            random_dag(seed), requests=3
        )
        try:
            for exp, obs in zip(
                plain.run_batch(feeds), arena.run_batch(feeds)
            ):
                for key in exp:
                    assert np.array_equal(exp[key], obs[key])
        finally:
            plain.close()
            arena.close()

    def test_rerun_reuses_buffers_without_contamination(self):
        # The second batch writes into the same arena storage; results
        # must not be views that a later batch can clobber.
        _, _, feeds, plain, arena = _engine_pair(chain_graph(length=5))
        plain.close()
        try:
            first = arena.run_batch(feeds)
            snapshot = [
                {k: v.copy() for k, v in sample.items()}
                for sample in first
            ]
            different = example_feeds(
                arena.compiled.graph, count=len(feeds), seed=1234
            )
            arena.run_batch(different)
            for kept, sample in zip(snapshot, first):
                for key in kept:
                    assert np.array_equal(kept[key], sample[key])
            assert arena.diagnostics.arena_batches == 2
        finally:
            arena.close()

    def test_varying_batch_sizes(self):
        _, _, feeds, plain, arena = _engine_pair(small_cnn(), requests=5)
        try:
            for count in (1, 3, 5):
                exp = plain.run_batch(feeds[:count])
                obs = arena.run_batch(feeds[:count])
                for e, o in zip(exp, obs):
                    for key in e:
                        assert np.array_equal(e[key], o[key])
        finally:
            plain.close()
            arena.close()


class TestMemoryPlanGate:
    def test_memory_plan_is_lazy_and_cached(self):
        _, _, _, plain, arena = _engine_pair(small_cnn())
        plain.close()
        try:
            assert arena._memory_plan is None
            plan = arena.memory_plan()
            assert plan is arena.memory_plan()
            assert plan.arena_size > 0
        finally:
            arena.close()

    def test_unsafe_plan_raises_before_first_batch(self, monkeypatch):
        import dataclasses

        from repro.absint import memplan

        _, _, feeds, plain, arena = _engine_pair(small_cnn())
        plain.close()
        real_plan = memplan.plan_memory

        def corrupt_plan(graph, liveness=None):
            plan = real_plan(graph, liveness)
            slots = dict(plan.slots)
            ids = sorted(slots)
            slots[ids[1]] = dataclasses.replace(
                slots[ids[1]], offset=slots[ids[0]].offset
            )
            return memplan.MemoryPlan(
                arena_size=plan.arena_size,
                slots=slots,
                total_bytes=plan.total_bytes,
            )

        monkeypatch.setattr(memplan, "plan_memory", corrupt_plan)
        try:
            with pytest.raises(SimulationError) as exc:
                arena.run_batch(feeds)
            assert "static verification" in str(exc.value)
        finally:
            arena.close()


class TestFaultSeams:
    def test_batch_fault_hook_still_fires_in_arena_mode(self):
        _, _, feeds, plain, arena = _engine_pair(small_cnn())
        plain.close()
        seen = []
        boom = RuntimeError("chaos")

        def hook(node):
            seen.append(node.name)
            if len(seen) == 3:
                raise boom

        arena.batch_fault_hook = hook
        try:
            with pytest.raises(RuntimeError):
                arena.run_batch(feeds)
            assert len(seen) == 3
            # The engine stays usable after a failed batch.
            arena.batch_fault_hook = None
            outputs = arena.run_batch(feeds)
            assert len(outputs) == len(feeds)
        finally:
            arena.close()

    def test_weight_levels_cached_on_executor_in_both_modes(self):
        # Weight levels are frozen per (executor, node): every engine
        # mode caches them after the first batch instead of requantizing
        # per GEMM call (formerly an arena-only engine-level cache).
        _, _, feeds, plain, arena = _engine_pair(small_cnn())
        try:
            plain.run_batch(feeds)
            arena.run_batch(feeds)
            assert plain._local._weight_levels
            assert arena._local._weight_levels
        finally:
            plain.close()
            arena.close()
