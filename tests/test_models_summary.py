"""Tests for model summaries."""

import pytest

from repro.models.summary import (
    ModelSummary,
    render_summary,
    summarize,
    summarize_model,
)
from tests.conftest import small_cnn


class TestSummarize:
    def test_counts_match_graph(self):
        graph = small_cnn()
        summary = summarize(graph)
        assert summary.operators == graph.operator_count()
        assert summary.gmacs == pytest.approx(graph.total_macs() / 1e9)

    def test_operator_mix_excludes_sources(self):
        summary = summarize(small_cnn())
        types = dict(summary.operator_mix)
        assert "Input" not in types
        assert types["Conv2D"] == 3

    def test_gemm_census_covers_compute_nodes(self):
        graph = small_cnn()
        summary = summarize(graph)
        census_total = sum(count for _, count in summary.gemm_shapes)
        compute = sum(1 for n in graph if n.op.is_compute_heavy)
        assert census_total == compute

    def test_largest_tensor(self):
        summary = summarize(small_cnn())
        assert summary.largest_tensor == (1, 8, 16, 16)

    def test_zoo_lookup_includes_paper_row(self):
        summary = summarize_model("wdsr_b")
        assert summary.info is not None
        assert summary.info.gcd2_ms == 66.7


class TestRender:
    def test_render_contains_key_sections(self):
        text = render_summary(summarize_model("wdsr_b"))
        assert "wdsr_b" in text
        assert "operator mix" in text
        assert "GEMM shape census" in text
        assert "paper row" in text

    def test_top_truncation(self):
        summary = summarize_model("efficientnet_b0")
        text = render_summary(summary, top=2)
        assert "more operator types" in text
        assert "more distinct shapes" in text
