"""Machine-level end-to-end tests: whole programs on the simulator.

The strongest correctness property in the repository: a generated
matmul program executed through *any* packer's schedule must leave the
same bytes in simulated memory as the sequential execution, and both
must equal numpy's answer.
"""

import numpy as np
import pytest

from repro.codegen.program import (
    build_matmul_program,
    run_packed,
    run_sequential,
)
from repro.core.packing.baselines import (
    pack_list_schedule,
    pack_soft_to_hard,
    pack_soft_to_none,
)
from repro.core.packing.evaluate import validate_schedule
from repro.core.packing.sda import pack_best, pack_instructions
from repro.errors import CodegenError

PACKERS = [
    pack_instructions,
    pack_best,
    pack_soft_to_hard,
    pack_soft_to_none,
    pack_list_schedule,
]

SHAPES = [(8, 4, 3), (32, 8, 4), (40, 7, 5), (64, 12, 2)]


def _operands(shape):
    m, k, n = shape
    rng = np.random.default_rng(m * 100 + k * 10 + n)
    a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
    b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
    return a, b


class TestSequentialExecution:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_numpy(self, shape):
        a, b = _operands(shape)
        program = build_matmul_program(a.shape, b)
        result, cycles = run_sequential(program, a)
        expected = a.astype(np.int32) @ b.astype(np.int32)
        assert (result == expected).all()
        assert cycles > 0

    def test_program_is_straight_line(self):
        a, b = _operands((8, 4, 3))
        program = build_matmul_program(a.shape, b)
        from repro.isa.instructions import Opcode

        assert all(
            inst.opcode
            in (Opcode.VLOAD, Opcode.VRMPY, Opcode.VSPLAT, Opcode.VSTORE)
            for inst in program.instructions
        )

    def test_bad_dims_rejected(self):
        with pytest.raises(CodegenError):
            build_matmul_program((4, 5), np.zeros((6, 2), np.int8))


class TestPackedExecution:
    @pytest.mark.parametrize("shape", SHAPES[:2])
    @pytest.mark.parametrize("packer", PACKERS)
    def test_any_schedule_preserves_semantics(self, shape, packer):
        a, b = _operands(shape)
        program = build_matmul_program(a.shape, b)
        validate_schedule(packer(program.instructions), program.instructions)
        sequential, _ = run_sequential(program, a)
        packed, _ = run_packed(program, a, packer)
        assert (packed == sequential).all()

    def test_packing_saves_cycles(self):
        a, b = _operands((32, 8, 4))
        program = build_matmul_program(a.shape, b)
        _, sequential_cycles = run_sequential(program, a)
        _, packed_cycles = run_packed(program, a, pack_best)
        assert packed_cycles < sequential_cycles

    def test_sda_at_least_as_good_as_soft_to_hard_here(self):
        a, b = _operands((40, 7, 5))
        program = build_matmul_program(a.shape, b)
        _, best = run_packed(program, a, pack_best)
        _, hard = run_packed(program, a, pack_soft_to_hard)
        assert best <= hard
