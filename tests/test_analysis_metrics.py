"""Unit tests for analysis metrics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import fps, fpw, geometric_mean, speedup

positive_floats = st.floats(0.01, 1e6, allow_nan=False)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    @given(values=st.lists(positive_floats, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * 0.999 <= gm <= max(values) * 1.001

    @given(
        values=st.lists(positive_floats, min_size=1, max_size=6),
        factor=positive_floats,
    )
    @settings(max_examples=50, deadline=None)
    def test_homogeneous(self, values, factor):
        scaled = geometric_mean([v * factor for v in values])
        assert scaled == pytest.approx(
            geometric_mean(values) * factor, rel=1e-6
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSpeedupAndRates:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)

    def test_speedup_propagates_none(self):
        assert speedup(None, 5.0) is None

    def test_speedup_rejects_bad_ours(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_fps(self):
        assert fps(10.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            fps(0.0)

    def test_fpw(self):
        assert fpw(10.0, 2.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            fpw(10.0, 0.0)
