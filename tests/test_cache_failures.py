"""Disk-cache failure modes: every I/O fault degrades, none fails a
compile, and a salvaged parallel round keeps its completed results.

Covers the robustness seams added for the serving layer: torn/truncated
disk entries, an unusable cache directory, a full disk (via the
``write_hook`` fault seam), and a worker pool dying mid-round with
results already in hand.
"""

import json

import pytest

from repro.cache import ScheduleCache, TIER_DISK, TIER_MISS
from repro.cache.parallel import pack_parallel
from repro.compiler import CompilerOptions, GCD2Compiler
from repro.core.packing import PACKERS
from repro.isa.instructions import Instruction, Opcode
from repro.machine.pipeline import schedule_cycles
from tests.conftest import small_cnn


def _body(shift: int = 3):
    return [
        Instruction(
            Opcode.VSPLAT, dests=("v0",), imms=(64,), lane_bytes=4
        ),
        Instruction(
            Opcode.VASR, dests=("v1",), srcs=("v0",), imms=(shift + 1,)
        ),
        Instruction(
            Opcode.VADD, dests=("v2",), srcs=("v1", "v1"), lane_bytes=4
        ),
    ]


def _entry(cache: ScheduleCache, fingerprint: str):
    from repro.cache.store import ScheduleEntry

    body = _body()
    packets = PACKERS["sda"](body)
    entry = ScheduleEntry(
        body=body, packets=packets, cycles=schedule_cycles(packets)
    )
    cache.put(fingerprint, entry)
    return entry


class TestTornDiskEntries:
    def test_truncated_entry_reads_as_miss(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        _entry(writer, "fp1")
        (path,) = list(writer.disk.schema_dir.glob("*.json"))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])

        reader = ScheduleCache(disk_dir=tmp_path)
        entry, tier = reader.lookup("fp1")
        assert entry is None and tier == TIER_MISS
        # The torn file is removed so it cannot fail every lookup.
        assert not path.exists()

    def test_valid_json_wrong_shape_reads_as_miss(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        _entry(writer, "fp1")
        (path,) = list(writer.disk.schema_dir.glob("*.json"))
        path.write_text(json.dumps({"schema": "x", "packets": "nope"}))

        reader = ScheduleCache(disk_dir=tmp_path)
        entry, tier = reader.lookup("fp1")
        assert entry is None and tier == TIER_MISS

    def test_recompile_after_corruption_is_identical(self, tmp_path):
        graph = small_cnn()
        options = CompilerOptions(cache_dir=str(tmp_path))
        baseline = GCD2Compiler(options).compile(small_cnn())
        for path in tmp_path.rglob("*.json"):
            path.write_text("{torn")
        recompiled = GCD2Compiler(options).compile(graph)
        assert recompiled.total_cycles == baseline.total_cycles
        assert recompiled.total_packets == baseline.total_packets
        # Corrupt entries must read as misses, not as wrong schedules.
        assert recompiled.diagnostics.cache_disk_hits == 0


class TestUnusableCacheDir:
    def test_cache_dir_under_a_file_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        options = CompilerOptions(cache_dir=str(blocker / "cache"))
        compiled = GCD2Compiler(options).compile(small_cnn())
        # Compile succeeded; every attempted disk write was an error.
        assert compiled.total_cycles > 0

    def test_store_into_unusable_dir_counts_disk_errors(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file")
        cache = ScheduleCache(disk_dir=blocker / "cache")
        _entry(cache, "fp1")
        assert cache.stats.disk_errors == 1
        # The memory tier still serves the entry.
        entry, tier = cache.lookup("fp1")
        assert entry is not None and tier == "memory"


class TestDiskFull:
    def test_write_hook_enospc_degrades_to_memory_only(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)

        def disk_full(path, payload):
            raise OSError(28, "No space left on device")

        cache.disk.write_hook = disk_full
        _entry(cache, "fp1")
        assert cache.stats.disk_errors == 1
        assert list(cache.disk.schema_dir.glob("*.json")) == []
        entry, tier = cache.lookup("fp1")
        assert entry is not None and tier == "memory"

    def test_compile_survives_disk_full(self, tmp_path):
        options = CompilerOptions(cache_dir=str(tmp_path))
        compiler = GCD2Compiler(options)

        def disk_full(path, payload):
            raise OSError(28, "No space left on device")

        compiler.schedule_cache.disk.write_hook = disk_full
        compiled = compiler.compile(small_cnn())
        assert compiled.total_cycles > 0
        assert compiler.schedule_cache.stats.disk_errors > 0
        # Nothing landed on disk: a fresh compile sees only misses.
        fresh = GCD2Compiler(options).compile(small_cnn())
        assert fresh.diagnostics.cache_disk_hits == 0
        assert fresh.total_cycles == compiled.total_cycles

    def test_disk_recovers_when_hook_cleared(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)
        cache.disk.write_hook = lambda path, payload: (_ for _ in ()).throw(
            OSError("full")
        )
        _entry(cache, "fp1")
        cache.disk.write_hook = None
        _entry(cache, "fp2")
        reader = ScheduleCache(disk_dir=tmp_path)
        assert reader.lookup("fp2")[1] == TIER_DISK
        assert reader.lookup("fp1")[1] == TIER_MISS


class _DyingFuture:
    def __init__(self, outcome, exc=None):
        self._outcome = outcome
        self._exc = exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._outcome


class _DyingPool:
    """Completes the first task, then the pool is 'dead'."""

    def __init__(self, max_workers=None):
        self.submitted = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, task):
        from concurrent.futures.process import BrokenProcessPool

        self.submitted += 1
        if self.submitted == 1:
            return _DyingFuture(fn(task))
        return _DyingFuture(
            None, BrokenProcessPool("worker died mid-round")
        )


class TestBrokenPoolSalvage:
    def test_completed_results_are_salvaged(self, monkeypatch):
        import repro.cache.parallel as parallel_mod

        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor", _DyingPool
        )
        tasks = [(f"fp{i}", "sda", _body(i)) for i in range(3)]
        results, report = pack_parallel(tasks, jobs=2)
        assert set(results) == {"fp0", "fp1", "fp2"}
        assert report.fell_back
        assert report.salvaged == 1
        assert report.serial_packed == 2
        assert report.jobs == 1

    def test_salvaged_results_match_serial(self, monkeypatch):
        import repro.cache.parallel as parallel_mod

        tasks = [(f"fp{i}", "sda", _body(i)) for i in range(3)]
        serial, _ = pack_parallel(tasks, jobs=1)
        monkeypatch.setattr(
            parallel_mod, "ProcessPoolExecutor", _DyingPool
        )
        salvaged, _ = pack_parallel(tasks, jobs=2)
        for fingerprint in serial:
            assert (
                salvaged[fingerprint].cycles == serial[fingerprint].cycles
            )
            assert len(salvaged[fingerprint].packets) == len(
                serial[fingerprint].packets
            )

    def test_pool_spawn_failure_packs_everything_serially(
        self, monkeypatch
    ):
        import repro.cache.parallel as parallel_mod

        class NoPool:
            def __init__(self, max_workers=None):
                raise OSError("cannot spawn workers")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", NoPool)
        tasks = [(f"fp{i}", "sda", _body(i)) for i in range(2)]
        results, report = pack_parallel(tasks, jobs=4)
        assert set(results) == {"fp0", "fp1"}
        assert report.fell_back and report.salvaged == 0
        assert report.serial_packed == 2

    def test_compiler_records_packing_degradation(self, monkeypatch):
        import repro.cache.parallel as parallel_mod

        class NoPool:
            def __init__(self, max_workers=None):
                raise OSError("cannot spawn workers")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", NoPool)
        compiled = GCD2Compiler(CompilerOptions(jobs=2)).compile(
            small_cnn()
        )
        records = [
            r
            for r in compiled.diagnostics.degradations
            if r.component == "packing"
        ]
        assert records, "parallel→serial downgrade was not recorded"
        assert records[0].to_mode == "serial"
        assert "parallel" in records[0].from_mode
