"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestModels:
    def test_lists_all_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("mobilenet_v3", "resnet50", "conformer"):
            assert name in out


class TestCompile:
    def test_compiles_with_defaults(self, capsys):
        assert main(["compile", "wdsr_b"]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out
        assert "gcd2(13)" in out

    def test_plans_flag(self, capsys):
        assert main(["compile", "wdsr_b", "--plans"]) == 0
        out = capsys.readouterr().out
        assert "column" in out  # a layout name in the plan dump

    def test_alternative_policies(self, capsys):
        assert main([
            "compile", "wdsr_b",
            "--selection", "local",
            "--packing", "soft_to_hard",
            "--unrolling", "none",
            "--no-other-opts",
        ]) == 0
        assert "local" in capsys.readouterr().out

    def test_unknown_model_rejected(self, capsys):
        # Bad model names are a library error (exit 1, one-line
        # message), not an argparse SystemExit — the argument also
        # accepts graph JSON paths.
        assert main(["compile", "alexnet"]) == 1
        err = capsys.readouterr().err
        assert "GraphError" in err
        assert "alexnet" in err


class TestExperiment:
    def test_experiment_names_cover_all_tables_and_figures(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "figure7", "figure8", "figure9", "figure10", "figure11",
            "figure12a", "figure12b", "figure13",
        }

    def test_runs_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "vrmpy" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])


class TestExport:
    def test_export_writes_loadable_json(self, tmp_path, capsys):
        path = tmp_path / "wdsr.json"
        assert main(["export", "wdsr_b", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["name"] == "wdsr_b"
        from repro.graph.serialization import load_graph

        assert load_graph(path).operator_count() > 0


class TestDescribe:
    def test_describe_prints_digest(self, capsys):
        assert main(["describe", "wdsr_b"]) == 0
        out = capsys.readouterr().out
        assert "operator mix" in out
        assert "GEMM shape census" in out

    def test_describe_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["describe", "vgg"])


class TestChart:
    def test_experiment_chart_flag(self, capsys):
        assert main(["experiment", "figure12b", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bars rendered

    def test_chartless_experiment_notes_fallback(self, capsys):
        assert main(["experiment", "table2", "--chart"]) == 0
        assert "no chart mapping" in capsys.readouterr().out
