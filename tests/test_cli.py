"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestModels:
    def test_lists_all_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("mobilenet_v3", "resnet50", "conformer"):
            assert name in out


class TestCompile:
    def test_compiles_with_defaults(self, capsys):
        assert main(["compile", "wdsr_b"]) == 0
        out = capsys.readouterr().out
        assert "latency:" in out
        assert "gcd2(13)" in out

    def test_plans_flag(self, capsys):
        assert main(["compile", "wdsr_b", "--plans"]) == 0
        out = capsys.readouterr().out
        assert "column" in out  # a layout name in the plan dump

    def test_alternative_policies(self, capsys):
        assert main([
            "compile", "wdsr_b",
            "--selection", "local",
            "--packing", "soft_to_hard",
            "--unrolling", "none",
            "--no-other-opts",
        ]) == 0
        assert "local" in capsys.readouterr().out

    def test_unknown_model_rejected(self, capsys):
        # Bad model names are a library error (exit 1, one-line
        # message), not an argparse SystemExit — the argument also
        # accepts graph JSON paths.
        assert main(["compile", "alexnet"]) == 1
        err = capsys.readouterr().err
        assert "GraphError" in err
        assert "alexnet" in err


class TestExperiment:
    def test_experiment_names_cover_all_tables_and_figures(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "figure7", "figure8", "figure9", "figure10", "figure11",
            "figure12a", "figure12b", "figure13",
        }

    def test_runs_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "vrmpy" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])


class TestExport:
    def test_export_writes_loadable_json(self, tmp_path, capsys):
        path = tmp_path / "wdsr.json"
        assert main(["export", "wdsr_b", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["name"] == "wdsr_b"
        from repro.graph.serialization import load_graph

        assert load_graph(path).operator_count() > 0


class TestDescribe:
    def test_describe_prints_digest(self, capsys):
        assert main(["describe", "wdsr_b"]) == 0
        out = capsys.readouterr().out
        assert "operator mix" in out
        assert "GEMM shape census" in out

    def test_describe_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["describe", "vgg"])


class TestChart:
    def test_experiment_chart_flag(self, capsys):
        assert main(["experiment", "figure12b", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bars rendered

    def test_chartless_experiment_notes_fallback(self, capsys):
        assert main(["experiment", "table2", "--chart"]) == 0
        assert "no chart mapping" in capsys.readouterr().out


class TestBenchCompile:
    def test_writes_json_with_three_modes(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main([
            "bench", "compile", "wdsr_b",
            "--json", "--output", str(output),
            "--cache-dir", str(tmp_path / "cache"),
            "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out and "parallel" in out

        payload = json.loads(output.read_text())
        assert payload["benchmark"] == "compiler_throughput"
        assert payload["jobs"] == 2
        modes = [row["mode"] for row in payload["rows"]]
        assert modes == ["cold", "warm", "parallel"]
        by_mode = {row["mode"]: row for row in payload["rows"]}
        assert by_mode["warm"]["cache"]["misses"] == 0
        assert by_mode["cold"]["cache"]["misses"] > 0
        assert by_mode["parallel"]["identical_to_cold"] is True

    def test_table_only_without_json_flag(self, tmp_path, capsys):
        assert main([
            "bench", "compile", "wdsr_b",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert not (tmp_path / "BENCH_compiler_throughput.json").exists()

    def test_unknown_model_rejected(self, capsys):
        assert main(["bench", "compile", "alexnet"]) == 1
        assert "GraphError" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear_round_trip(self, tmp_path, capsys):
        from repro.compiler import CompilerOptions, GCD2Compiler
        from tests.conftest import small_cnn

        cache_dir = str(tmp_path / "cache")
        GCD2Compiler(CompilerOptions(cache_dir=cache_dir)).compile(
            small_cnn()
        )
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "(current)" in out
        assert "entries (current schema): 0" not in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries (current schema): 0" in out
        assert "generations: none" in out

    def test_compile_and_verify_honor_cache_env(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["compile", "wdsr_b"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries (current schema): 0" not in out

    def test_compile_cache_dir_flag_wins_over_env(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        assert main([
            "compile", "wdsr_b", "--cache-dir", str(explicit)
        ]) == 0
        assert explicit.is_dir()
        assert not (tmp_path / "env").exists()

    def test_stats_on_empty_root(self, tmp_path, capsys):
        assert main([
            "cache", "stats", "--cache-dir", str(tmp_path / "nothing")
        ]) == 0
        assert "generations: none" in capsys.readouterr().out
