"""Tests for linear-scan register allocation with spill insertion.

The headline property: an allocated program — even under a tiny
artificial register budget that forces heavy spilling — leaves exactly
the same bytes in simulated memory as the original virtual-register
program.
"""

import numpy as np
import pytest

from repro.codegen.program import build_matmul_program, run_sequential
from repro.codegen.regalloc import (
    DEFAULT_VECTOR_BUDGET,
    AllocationResult,
    allocate_registers,
)
from repro.errors import CodegenError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import RegisterFile
from repro.machine.packet import Packet
from repro.machine.simulator import MachineState, Simulator


def _run_instructions(program, a, original):
    state = MachineState()
    original.load_operands(state, a)
    Simulator(state).run([Packet([inst]) for inst in program])
    return original.read_result(state)


def _operands(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
    b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
    return a, b


class TestAllocation:
    def test_no_spills_within_budget(self):
        a, b = _operands(32, 8, 2)
        program = build_matmul_program(a.shape, b)
        result = allocate_registers(program.instructions)
        assert not result.spilled
        assert result.spill_loads == result.spill_stores == 0
        assert result.physical_registers_used <= DEFAULT_VECTOR_BUDGET

    def test_physical_names_respect_budget(self):
        a, b = _operands(64, 8, 4)
        program = build_matmul_program(a.shape, b)
        result = allocate_registers(program.instructions, vector_budget=8)
        for inst in result.instructions:
            for name in tuple(inst.dests) + tuple(inst.srcs):
                if RegisterFile.is_vector_name(name):
                    assert int(name[1:]) < 8

    @pytest.mark.parametrize("budget", [4, 6, 8, 16])
    def test_semantics_preserved_under_pressure(self, budget):
        a, b = _operands(64, 8, 4, seed=budget)
        program = build_matmul_program(a.shape, b)
        expected = a.astype(np.int32) @ b.astype(np.int32)
        result = allocate_registers(
            program.instructions, vector_budget=budget
        )
        got = _run_instructions(result.instructions, a, program)
        assert (got == expected).all()

    def test_pressure_produces_spill_traffic(self):
        a, b = _operands(64, 16, 6)
        program = build_matmul_program(a.shape, b)
        tight = allocate_registers(program.instructions, vector_budget=4)
        assert tight.spilled
        assert tight.spill_loads > 0

    def test_spill_traffic_decreases_with_budget(self):
        a, b = _operands(64, 16, 6)
        program = build_matmul_program(a.shape, b)
        tight = allocate_registers(program.instructions, vector_budget=4)
        roomy = allocate_registers(program.instructions, vector_budget=24)
        assert roomy.spill_loads <= tight.spill_loads

    def test_budget_too_small_rejected(self):
        with pytest.raises(CodegenError):
            allocate_registers([Instruction(Opcode.NOP)], vector_budget=2)

    def test_scalar_registers_untouched(self):
        program = [
            Instruction(Opcode.ADD, dests=("r_a",), srcs=("r_a",), imms=(1,)),
            Instruction(Opcode.VLOAD, dests=("v_x",), srcs=("r_a",)),
        ]
        result = allocate_registers(program)
        assert result.instructions[0].dests == ("r_a",)
        assert result.instructions[1].srcs == ("r_a",)


class TestSpillCorrectness:
    """Regression tests for spill-rewrite bugs the lint surfaced."""

    def test_allocated_programs_pass_uninitialized_read_lint(self):
        from repro.lint import StaticAnalyzer

        a, b = _operands(8, 16, 6)
        for budget in (3, 4, 8, DEFAULT_VECTOR_BUDGET):
            program = build_matmul_program(a.shape, b)
            result = allocate_registers(
                program.instructions, vector_budget=budget
            )
            report = StaticAnalyzer().lint_program(result.instructions)
            bad = [
                d
                for d in report
                if d.rule_id in ("LINT-DF001", "LINT-DF004")
            ]
            assert not bad, [d.render() for d in bad]

    def test_two_spilled_dests_get_distinct_temporaries(self):
        # A paired-output instruction whose both destinations spill
        # used to write through one shared temporary, folding the two
        # halves into the same register.
        from repro.codegen.program import INPUT_BASE, OUTPUT_BASE

        program = [
            Instruction(Opcode.VLOAD, dests=("v_a",), imms=(INPUT_BASE,)),
            Instruction(
                Opcode.VLOAD, dests=("v_b",), imms=(INPUT_BASE + 128,)
            ),
            Instruction(
                Opcode.VSHUFF, dests=("v_x", "v_y"), srcs=("v_a", "v_b")
            ),
            Instruction(Opcode.VADD, dests=("v_z",), srcs=("v_x", "v_y")),
            Instruction(Opcode.VSTORE, srcs=("v_z",), imms=(OUTPUT_BASE,)),
        ]
        result = allocate_registers(program, vector_budget=3)
        assert {"v_x", "v_y"} <= result.spilled
        shuff = next(
            inst
            for inst in result.instructions
            if inst.opcode is Opcode.VSHUFF
        )
        assert len(set(shuff.dests)) == 2

    def test_two_spilled_dests_memory_equivalent(self):
        from repro.codegen.program import INPUT_BASE, OUTPUT_BASE

        def build():
            return [
                Instruction(
                    Opcode.VLOAD, dests=("v_a",), imms=(INPUT_BASE,)
                ),
                Instruction(
                    Opcode.VLOAD, dests=("v_b",), imms=(INPUT_BASE + 128,)
                ),
                Instruction(
                    Opcode.VSHUFF, dests=("v_x", "v_y"), srcs=("v_a", "v_b")
                ),
                Instruction(
                    Opcode.VADD, dests=("v_z",), srcs=("v_x", "v_y")
                ),
                Instruction(
                    Opcode.VSTORE, srcs=("v_z",), imms=(OUTPUT_BASE,)
                ),
            ]

        def run(instructions):
            state = MachineState()
            rng = np.random.default_rng(7)
            data = rng.integers(-100, 100, size=256, dtype=np.int8)
            state.write_array(INPUT_BASE, data)
            Simulator(state).run(
                [Packet([inst]) for inst in instructions]
            )
            return state.load_bytes(OUTPUT_BASE, 128)

        reference = run(build())
        allocated = allocate_registers(build(), vector_budget=3)
        assert np.array_equal(run(allocated.instructions), reference)

    def test_spilled_implicit_accumulator_is_reloaded(self):
        # vrmpy's accumulate form reads its destination implicitly; a
        # spilled accumulator must be reloaded before the instruction
        # even though it never appears in srcs.
        from repro.codegen.program import INPUT_BASE

        program = [
            Instruction(Opcode.VSPLAT, dests=("v_acc",), imms=(0,)),
            Instruction(Opcode.VLOAD, dests=("v_p",), imms=(INPUT_BASE,)),
            Instruction(
                Opcode.VLOAD, dests=("v_q",), imms=(INPUT_BASE + 128,)
            ),
            Instruction(Opcode.VADD, dests=("v_r",), srcs=("v_p", "v_q")),
            Instruction(Opcode.VRMPY, dests=("v_acc",), srcs=("v_r",)),
            Instruction(Opcode.VSTORE, srcs=("v_acc",), imms=(0x40000,)),
        ]
        result = allocate_registers(program, vector_budget=3)
        assert "v_acc" in result.spilled
        position = next(
            i
            for i, inst in enumerate(result.instructions)
            if inst.opcode is Opcode.VRMPY
        )
        reload = result.instructions[position - 1]
        assert reload.opcode is Opcode.VLOAD
        assert reload.comment == "reload v_acc"
        # The reload lands in the same temporary the vrmpy accumulates
        # into, preserving read-modify-write semantics.
        assert reload.dests == result.instructions[position].dests
