"""Unit and property tests for requantization arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.quant.quantize import (
    QuantParams,
    quantize_model_tensor,
    reference_requantize,
    requantize,
    requantize_multiplier,
)

accumulators = arrays(
    np.int64, (64,), elements=st.integers(-(2**24), 2**24)
)
rescales = st.floats(1e-6, 1.5, allow_nan=False)


class TestMultiplier:
    @given(rescale=rescales)
    @settings(max_examples=80, deadline=None)
    def test_decomposition_accuracy(self, rescale):
        multiplier, shift = requantize_multiplier(rescale)
        approx = multiplier / (1 << shift)
        assert abs(approx - rescale) / rescale < 1e-4

    @given(rescale=rescales)
    @settings(max_examples=40, deadline=None)
    def test_multiplier_normalized(self, rescale):
        multiplier, _ = requantize_multiplier(rescale)
        assert (1 << 14) <= multiplier <= (1 << 15)

    def test_rejects_nonpositive(self):
        with pytest.raises(QuantizationError):
            requantize_multiplier(0.0)

    def test_large_rescales_encode_with_negative_room(self):
        multiplier, shift = requantize_multiplier(3.0)
        assert multiplier / (1 << shift) == pytest.approx(3.0, rel=1e-4)

    def test_rejects_astronomical_rescale(self):
        with pytest.raises(QuantizationError):
            requantize_multiplier(1e20)


class TestRequantize:
    @given(acc=accumulators, rescale=rescales)
    @settings(max_examples=80, deadline=None)
    def test_matches_float_reference_within_one_level(self, acc, rescale):
        fixed = requantize(acc, rescale).astype(np.int64)
        ref = reference_requantize(acc, rescale).astype(np.int64)
        assert np.abs(fixed - ref).max() <= 1

    def test_output_saturates_to_int8(self):
        out = requantize(np.array([10**7, -(10**7)]), 1.0)
        assert out[0] == 127 and out[1] == -128
        assert out.dtype == np.int8

    def test_zero_point_applied(self):
        out = requantize(np.array([0]), 0.5, output_zero_point=5)
        assert out[0] == 5


class TestQuantParams:
    @given(
        values=arrays(
            np.float64, (32,),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_error_bounded(self, values):
        params = QuantParams(scale=0.1, zero_point=3)
        levels = params.quantize(values)
        recovered = params.dequantize(levels)
        in_range = np.abs(values) <= 0.1 * 120  # away from saturation
        errors = np.abs(recovered - values)[in_range]
        if errors.size:
            assert errors.max() <= 0.05 + 1e-12

    def test_quantize_saturates(self):
        params = QuantParams(scale=0.01)
        assert params.quantize(np.array([100.0]))[0] == 127
        assert params.quantize(np.array([-100.0]))[0] == -128


class TestModelTensorQuantization:
    def test_symmetric_weights(self):
        q = quantize_model_tensor(np.random.default_rng(0).normal(size=64))
        assert q.zero_point == 0

    def test_asymmetric_activations(self):
        values = np.random.default_rng(0).uniform(0.0, 6.0, size=64)
        q = quantize_model_tensor(values, symmetric=False)
        error = np.abs(q.dequantize() - values).max()
        assert error <= q.scale + 1e-9
