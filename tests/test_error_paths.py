"""Failure-injection tests: the library fails loudly and specifically.

Every subsystem's error paths, exercised in one place — the guarantee
that misuse produces a :class:`~repro.errors.ReproError` subclass with
a useful message, never a silent wrong answer.
"""

import numpy as np
import pytest

from repro import errors
from repro.graph import ops
from repro.graph.graph import ComputationalGraph


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.IsaError,
            errors.PacketError,
            errors.LayoutError,
            errors.QuantizationError,
            errors.GraphError,
            errors.ShapeError,
            errors.SelectionError,
            errors.SchedulingError,
            errors.CodegenError,
            errors.SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_shape_error_is_graph_error(self):
        assert issubclass(errors.ShapeError, errors.GraphError)

    def test_single_except_clause_catches_everything(self):
        caught = []
        for exc in (errors.IsaError, errors.ShapeError, errors.CodegenError):
            try:
                raise exc("boom")
            except errors.ReproError as err:
                caught.append(err)
        assert len(caught) == 3


class TestMessagesAreSpecific:
    def test_layout_error_names_sizes(self):
        from repro.tensor.layout import unpack, Layout

        with pytest.raises(errors.LayoutError) as exc:
            unpack(np.zeros(10, np.int8), 4, 4, Layout.COL1)
        assert "10" in str(exc.value)

    def test_graph_error_names_missing_node(self):
        graph = ComputationalGraph()
        with pytest.raises(errors.GraphError) as exc:
            graph.node(42)
        assert "42" in str(exc.value)

    def test_simulation_error_names_address(self):
        from repro.machine.simulator import MachineState

        state = MachineState(memory_size=64)
        with pytest.raises(errors.SimulationError) as exc:
            state.load_bytes(60, 10)
        assert "60" in str(exc.value)

    def test_selection_error_names_node(self):
        from repro.core.selection_common import SelectionResult

        with pytest.raises(errors.SelectionError) as exc:
            SelectionResult({}, 0.0, "t").plan_for(7)
        assert "7" in str(exc.value)


class TestCorruptInputs:
    def test_simulator_rejects_unknown_handler(self):
        # Forged opcode values cannot execute.
        from repro.machine.simulator import Simulator, _HANDLERS
        from repro.machine.packet import Packet
        from repro.isa.instructions import Instruction, Opcode

        inst = Instruction(Opcode.NOP)
        handler = _HANDLERS.pop(Opcode.NOP)
        try:
            with pytest.raises(errors.SimulationError):
                Simulator().step(Packet([inst]))
        finally:
            _HANDLERS[Opcode.NOP] = handler

    def test_graph_rejects_cycle_inducing_input(self):
        graph = ComputationalGraph()
        with pytest.raises(errors.GraphError):
            # Forward reference: node 1 does not exist yet.
            graph.add(ops.ReLU(), [1])

    def test_quantized_executor_surfaces_kernel_shape_bugs(self):
        # The runtime cross-checks every kernel's output shape.
        from repro.compiler import compile_model
        from repro.runtime.executor import QuantizedExecutor
        from tests.conftest import small_cnn

        from repro.quant.quantize import QuantParams

        compiled = compile_model(small_cnn())
        executor = QuantizedExecutor(compiled)
        node = compiled.nodes[0].node
        params = QuantParams(scale=1.0)
        with pytest.raises(errors.SimulationError):
            executor._gemm_2d(
                node,
                np.zeros((0, 4)),  # degenerate operand
                np.zeros((4, 4)),
                compiled.nodes[0].plan,
                params,
                params,
            )

    def test_cost_model_rejects_planless_compute(self):
        from repro.core.cost import CostModel
        from repro.core.plans import ExecutionPlan
        from repro.tensor.layout import Layout
        from tests.conftest import small_cnn

        graph = small_cnn()
        conv = next(n for n in graph if n.op.is_compute_heavy)
        with pytest.raises(errors.SelectionError):
            CostModel().node_cost(
                graph, conv, ExecutionPlan(None, Layout.COL1)
            )
