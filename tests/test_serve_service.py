"""ServeService behaviour: registry, jobs, ladder, breaker, pools.

Drives the service core in-process (no HTTP) through its happy path
and every degradation rung, asserting that each downgrade is recorded
in the service diagnostics — the contract the chaos harness relies on.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    DeadlineExceeded,
    GraphError,
    ModelNotReadyError,
    QuarantinedError,
    ServiceError,
    SimulationError,
)
from repro.graph.serialization import save_graph
from repro.serve import ServeConfig, ServeService
from repro.serve.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.serve.chaos import build_chaos_graph
from repro.serve.jobs import JobQueue
from tests.conftest import small_cnn


@pytest.fixture
def graph_path(tmp_path):
    path = tmp_path / "chaos_cnn.json"
    save_graph(build_chaos_graph(), str(path))
    return str(path)


@pytest.fixture
def service(tmp_path, graph_path):
    svc = ServeService(
        ServeConfig(
            cache_dir=str(tmp_path / "cache"),
            graph_root=str(tmp_path),
            retry_backoff_s=0.01,
            breaker_threshold=2,
        )
    ).start(warm=False)
    yield svc
    svc.stop()


def _register(service, graph_path, name="m1", **kwargs):
    entry, job = service.register(name, source=graph_path, **kwargs)
    assert job.wait(timeout=120), "compile job hung"
    return entry, job


class TestRegisterAndCompile:
    def test_happy_path_compiles_and_serves(self, service, graph_path):
        entry, job = _register(service, graph_path)
        assert job.ok and entry.state == "ready"
        assert entry.compile_stats["rung"] == "as-requested"
        result = service.infer("m1", batch=2, seed=5)
        assert result["mode"] == "batched"
        assert len(result["outputs"]) == 2
        sample = result["outputs"][0]
        for payload in sample.values():
            assert set(payload) == {"shape", "dtype", "data"}

    def test_unknown_option_rejected_at_the_door(
        self, service, graph_path
    ):
        with pytest.raises(ServiceError) as excinfo:
            service.register(
                "m1", source=graph_path, options_payload={"jbos": 2}
            )
        assert "jbos" in str(excinfo.value)
        assert excinfo.value.details["allowed"]

    def test_unknown_source_rejected(self, service):
        with pytest.raises(GraphError):
            service.register("ghost", source="no_such_model")

    def test_infer_before_ready_is_structured(self, service, graph_path):
        # Registered but never compiled (job still queued behind the
        # worker); use a name that is not registered at all first.
        with pytest.raises(GraphError):
            service.infer("never_registered")

    def test_tuned_without_trials_degrades_to_default(
        self, service, graph_path
    ):
        entry, job = _register(
            service,
            graph_path,
            name="tuned_m",
            options_payload={"tuned": True},
        )
        assert job.ok
        steps = service.diagnostics.degradations_for("tuned_m")
        assert any(
            s["from"] == "tuned" and s["to"] == "default" for s in steps
        )

    def test_transient_fault_is_retried(self, service, graph_path):
        crashes = {"left": 1}

        def crash_once(artefact):
            if crashes["left"]:
                crashes["left"] -= 1
                raise OSError("flaky disk")
            return artefact

        service.fault_hooks["lowering"] = crash_once
        entry, job = _register(service, graph_path)
        assert job.ok
        assert job.retries == 1
        assert service.diagnostics.retries == 1

    def test_persistent_transient_fault_fails_structured(
        self, service, graph_path
    ):
        service.fault_hooks["lowering"] = lambda a: (_ for _ in ()).throw(
            OSError("always broken")
        )
        entry, job = _register(service, graph_path)
        assert not job.ok
        assert job.error["code"] == "service-error"
        assert "transient" in job.error["message"]


class TestDeadlines:
    def test_slow_compile_aborts_with_deadline_error(
        self, service, graph_path
    ):
        def slow(artefact):
            time.sleep(0.3)
            return artefact

        service.fault_hooks["selection"] = slow
        entry, job = _register(service, graph_path, deadline_s=0.1)
        assert not job.ok
        assert job.error["code"] == "deadline-exceeded"
        assert service.diagnostics.deadline_timeouts == 1

    def test_infer_deadline_is_cooperative(self, service, graph_path):
        _register(service, graph_path)
        with pytest.raises(DeadlineExceeded):
            service.infer("m1", batch=1, deadline_s=1e-6)
        assert service.diagnostics.deadline_timeouts == 1
        # The model still serves afterwards.
        assert service.infer("m1", batch=1)["mode"] == "batched"


class TestBreaker:
    def test_repeated_failures_quarantine_the_model(
        self, service, graph_path
    ):
        service.fault_hooks["graph"] = lambda a: (_ for _ in ()).throw(
            SimulationError("poisoned", stage="graph")
        )
        for _ in range(2):  # breaker_threshold=2
            _, job = _register(service, graph_path, name="sick")
            assert not job.ok
        assert service.breaker.state("sick") == STATE_OPEN
        # Third attempt fails fast without running a compile.
        _, job = _register(service, graph_path, name="sick")
        assert job.error["code"] == "quarantined-error"
        assert job.error["details"]["breaker_state"] == STATE_OPEN
        events = [
            e
            for e in service.diagnostics.breaker_events
            if e["model"] == "sick"
        ]
        assert any(e["state"] == STATE_OPEN for e in events)

    def test_other_models_unaffected_by_quarantine(
        self, service, graph_path
    ):
        service.breaker.record_failure("sick", "boom")
        service.breaker.record_failure("sick", "boom")
        assert service.breaker.state("sick") == STATE_OPEN
        _, job = _register(service, graph_path, name="healthy")
        assert job.ok


class TestCircuitBreakerUnit:
    def test_cooldown_then_probe_then_close(self):
        clock = {"now": 0.0}
        events = []
        breaker = CircuitBreaker(
            failure_threshold=2,
            cooldown_s=10.0,
            clock=lambda: clock["now"],
            on_event=lambda *a: events.append(a),
        )
        breaker.record_failure("m", "e1")
        assert breaker.state("m") == STATE_CLOSED
        breaker.record_failure("m", "e2")
        assert breaker.state("m") == STATE_OPEN
        with pytest.raises(QuarantinedError) as excinfo:
            breaker.check("m")
        assert excinfo.value.details["retry_after_s"] == 10.0
        clock["now"] = 11.0
        breaker.check("m")  # admitted as the half-open probe
        assert breaker.state("m") == STATE_HALF_OPEN
        # Concurrent caller is rejected while the probe is in flight.
        with pytest.raises(QuarantinedError):
            breaker.check("m")
        breaker.record_success("m")
        assert breaker.state("m") == STATE_CLOSED
        assert [e[1] for e in events] == [
            STATE_OPEN,
            STATE_HALF_OPEN,
            STATE_CLOSED,
        ]

    def test_probe_failure_reopens(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=5.0,
            clock=lambda: clock["now"],
        )
        breaker.record_failure("m", "e")
        clock["now"] = 6.0
        breaker.check("m")
        breaker.record_failure("m", "probe died")
        assert breaker.state("m") == STATE_OPEN
        with pytest.raises(QuarantinedError):
            breaker.check("m")


class TestAdmission:
    def test_full_queue_rejects_structured(self, tmp_path, graph_path):
        # No workers: nothing drains the queue.
        service = ServeService(
            ServeConfig(
                cache_dir=str(tmp_path / "cache-q"),
                graph_root=str(tmp_path),
                queue_capacity=2,
            )
        )
        service.register("a", source=graph_path)
        service.register("b", source=graph_path)
        with pytest.raises(AdmissionError) as excinfo:
            service.register("c", source=graph_path)
        details = excinfo.value.details
        assert details["queue"] == "compile"
        assert details["capacity"] == 2
        assert details["retry_after_s"] == 1.0
        assert service.diagnostics.rejections["compile-queue"] == 1
        # The rejected job does not linger in the job registry, and
        # the rejected model entry was rolled back.
        assert all(j.model != "c" for j in service.jobs.jobs())
        assert service.registry.maybe("c") is None

    def test_rejected_reregistration_keeps_live_entry(
        self, tmp_path, graph_path
    ):
        # No workers: the single queue slot stays occupied.
        service = ServeService(
            ServeConfig(
                cache_dir=str(tmp_path / "cache-rr"),
                graph_root=str(tmp_path),
                queue_capacity=1,
            )
        )
        before, _ = service.register("a", source=graph_path)
        with pytest.raises(AdmissionError):
            service.register("a", source=graph_path)
        # The live registration survives the rejected re-registration.
        assert service.registry.get("a") is before

    def test_worker_finds_entry_registered_before_submit(
        self, service, graph_path
    ):
        # The entry must be in the registry by the time the job is
        # queued — a worker dequeuing instantly must never see None
        # and spuriously fail with "model disappeared".
        entry, job = _register(service, graph_path, name="race")
        assert job.ok
        assert job.error is None

    def test_job_queue_unit(self):
        queue = JobQueue(capacity=1)
        job = queue.new_job("m")
        assert job.job_id == "job-1"
        queue.submit(job)
        with pytest.raises(AdmissionError):
            queue.submit(queue.new_job("m2"))
        assert queue.take(timeout=0.01) is job
        assert queue.take(timeout=0.01) is None


class TestInferencePaths:
    def test_explicit_feeds_round_trip(self, service, graph_path):
        _register(service, graph_path)
        graph = service.registry.get("m1").compiled.graph
        from repro.harness import example_feeds

        feeds = example_feeds(graph, count=1, seed=3)[0]
        encoded = [
            {name: value.tolist() for name, value in feeds.items()}
        ]
        via_payload = service.infer("m1", feeds=encoded)
        via_synthetic = service.infer("m1", batch=1, seed=3)
        assert via_payload["outputs"] == via_synthetic["outputs"]

    def test_bad_feed_payload_is_structured(self, service, graph_path):
        _register(service, graph_path)
        with pytest.raises(ServiceError):
            service.infer("m1", feeds=[{"image": ["not", "numbers"]}])
        with pytest.raises(ServiceError):
            service.infer("m1", feeds=["not-a-dict"])

    def test_mid_batch_failure_degrades_bit_identically(
        self, service, graph_path
    ):
        _register(service, graph_path)
        baseline = service.infer("m1", batch=2, seed=9)
        entry = service.registry.get("m1")
        fails = {"left": 1}

        def die_once(node):
            if fails["left"]:
                fails["left"] -= 1
                raise RuntimeError("mid-batch fault")

        for engine in entry.pool.engines():
            engine.batch_fault_hook = die_once
        degraded = service.infer("m1", batch=2, seed=9)
        assert degraded["mode"] == "per-sample"
        assert degraded["outputs"] == baseline["outputs"]
        steps = service.diagnostics.degradations_for("m1")
        assert any(
            s["from"] == "batched" and s["to"] == "per-sample"
            for s in steps
        )

    def test_failed_model_reports_not_ready(self, service, graph_path):
        service.fault_hooks["graph"] = lambda a: (_ for _ in ()).throw(
            SimulationError("poisoned", stage="graph")
        )
        _, job = _register(service, graph_path, name="broken")
        assert not job.ok
        with pytest.raises(ModelNotReadyError) as excinfo:
            service.infer("broken")
        assert excinfo.value.details["state"] == "failed"


class TestWarmStart:
    def test_restart_restores_and_serves_identically(
        self, tmp_path, graph_path
    ):
        cache_dir = str(tmp_path / "warm-cache")
        config = ServeConfig(
            cache_dir=cache_dir, graph_root=str(tmp_path)
        )
        first = ServeService(config).start(warm=False)
        _register(first, graph_path)
        baseline = first.infer("m1", batch=2, seed=11)["outputs"]
        first.stop()

        second = ServeService(config).start(warm=True)
        try:
            warm = second.diagnostics.warm_start
            assert warm["manifest_models"] == 1
            assert warm["restored"] == 1
            # Every packing lookup must hit the disk cache: a warm
            # restart recompiles through the cache, not from scratch.
            assert warm["cache_misses"] == 0
            assert warm["cache_hits"] > 0
            after = second.infer("m1", batch=2, seed=11)["outputs"]
            assert after == baseline
        finally:
            second.stop()

    def test_corrupt_manifest_starts_cold(self, tmp_path, graph_path):
        cache_dir = tmp_path / "manifest-cache"
        (cache_dir / "serve").mkdir(parents=True)
        (cache_dir / "serve" / "models.json").write_text("{broken")
        service = ServeService(
            ServeConfig(cache_dir=str(cache_dir))
        ).start(warm=True)
        try:
            assert service.diagnostics.warm_start["manifest_models"] == 0
            assert service.registry.names() == []
        finally:
            service.stop()

    def test_status_and_views(self, service, graph_path):
        _register(service, graph_path)
        service.infer("m1", batch=1)
        status = service.status()
        assert status["models"][0]["name"] == "m1"
        assert status["models"][0]["state"] == "ready"
        assert status["models"][0]["artifact"]["operators"] > 0
        assert status["diagnostics"]["inference_requests"] == 1
        assert status["queue"]["capacity"] == 8
        lint = service.lint("m1")
        assert "summary" in lint
        board = service.leaderboard("m1")
        assert board["rows"] == []


class TestDeadlineValidation:
    @pytest.mark.parametrize(
        "bad", [0, -1, "soon", float("nan"), float("inf"), True, [5]]
    )
    def test_bad_register_deadline_rejected_at_the_door(
        self, service, graph_path, bad
    ):
        with pytest.raises(ServiceError) as excinfo:
            service.register("m_bad", source=graph_path, deadline_s=bad)
        assert excinfo.value.details["field"] == "deadline_s"
        # Nothing was registered or queued.
        assert service.registry.maybe("m_bad") is None
        assert all(j.model != "m_bad" for j in service.jobs.jobs())

    def test_bad_deadline_never_reaches_the_worker(
        self, service, graph_path
    ):
        with pytest.raises(ServiceError):
            service.register("m_bad", source=graph_path, deadline_s=0)
        # The compile worker is alive and serves the next job.
        _, job = _register(service, graph_path, name="m_ok")
        assert job.ok

    def test_bad_infer_deadline_rejected(self, service, graph_path):
        _register(service, graph_path)
        with pytest.raises(ServiceError):
            service.infer("m1", batch=1, deadline_s=-2)
        with pytest.raises(ServiceError):
            service.infer("m1", batch=1, deadline_s="fast")
        # Still serving.
        assert service.infer("m1", batch=1)["mode"] == "batched"


class TestWorkerResilience:
    def test_unexpected_error_fails_job_not_worker(
        self, service, graph_path, monkeypatch
    ):
        original = service.breaker.check
        calls = {"n": 0}

        def explode(model):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("bug outside the ladder")
            return original(model)

        monkeypatch.setattr(service.breaker, "check", explode)
        _, job = _register(service, graph_path, name="victim")
        assert not job.ok
        assert job.error["code"] == "internal-error"
        entry = service.registry.get("victim")
        assert entry.state == "failed"
        # The worker thread survived to run the next compile.
        _, job2 = _register(service, graph_path, name="survivor")
        assert job2.ok


class TestGraphRootContainment:
    def test_source_outside_root_rejected(
        self, service, tmp_path_factory
    ):
        from repro.graph.serialization import save_graph
        from repro.serve.chaos import build_chaos_graph

        outside = tmp_path_factory.mktemp("outside") / "g.json"
        save_graph(build_chaos_graph(), str(outside))
        with pytest.raises(GraphError, match="escapes"):
            service.register("evil", source=str(outside))

    def test_traversal_rejected(self, service):
        with pytest.raises(GraphError, match="escapes"):
            service.register("evil", source="../../etc/passwd.json")

    def test_path_sources_disabled_without_root(
        self, tmp_path, graph_path
    ):
        svc = ServeService(
            ServeConfig(cache_dir=str(tmp_path / "no-root"))
        )
        with pytest.raises(GraphError, match="disabled"):
            svc.register("m", source=graph_path)

    def test_relative_source_resolves_inside_root(
        self, service, graph_path
    ):
        # graph_path lives directly under the configured graph root.
        entry, job = _register(service, graph_path, name="rel")
        assert job.ok
        _, job2 = service.register("rel2", source="chaos_cnn.json")
        assert job2.wait(timeout=120) and job2.ok


class TestEnginePool:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.compiler import CompilerOptions, compile_model
        from repro.serve.chaos import build_chaos_graph

        return compile_model(build_chaos_graph(), CompilerOptions())

    @staticmethod
    def _assert_outputs_equal(a, b):
        assert len(a) == len(b)
        for sample_a, sample_b in zip(a, b):
            assert set(sample_a) == set(sample_b)
            for key in sample_a:
                np.testing.assert_array_equal(sample_a[key], sample_b[key])

    def _pool(self, compiled, **kwargs):
        from repro.harness import example_feeds
        from repro.serve.pool import EnginePool

        return EnginePool(
            compiled,
            calibration_feeds=example_feeds(
                compiled.graph, count=2, seed=99
            ),
            **kwargs,
        )

    def test_every_engine_in_the_pool_serves_batched(self, compiled):
        from repro.harness import example_feeds

        pool = self._pool(compiled, size=2)
        feeds = example_feeds(compiled.graph, count=2, seed=17)
        first = pool.infer(feeds)
        # FIFO checkout: this request runs on the *second* engine,
        # which must share the frozen calibration all the way into its
        # executors — not just as an attribute on the engine.
        second = pool.infer(feeds)
        assert first["mode"] == "batched"
        assert second["mode"] == "batched"
        self._assert_outputs_equal(first["outputs"], second["outputs"])
        pool.close()

    def test_saturated_pool_times_out_without_deadline(self, compiled):
        pool = self._pool(compiled, size=1, checkout_timeout_s=0.05)
        engine = pool._checkout(None)  # drain the only engine
        from repro.harness import example_feeds

        feeds = example_feeds(compiled.graph, count=1, seed=1)
        started = time.monotonic()
        with pytest.raises(AdmissionError) as excinfo:
            pool.infer(feeds)
        assert time.monotonic() - started < 5.0
        assert excinfo.value.details["timeout_s"] == 0.05
        pool._idle.put(engine)
        pool.close()

    def test_failed_engine_is_rebuilt_not_recirculated(self, compiled):
        from repro.harness import example_feeds

        pool = self._pool(compiled, size=1)
        broken = pool.engines()[0]

        def always_die(node):
            raise RuntimeError("persistently broken engine")

        broken.batch_fault_hook = always_die
        feeds = example_feeds(compiled.graph, count=2, seed=3)
        degraded = pool.infer(feeds)
        assert degraded["mode"] == "per-sample"
        assert pool.rebuilds == 1
        assert pool.engines()[0] is not broken
        # The fresh engine serves batched again — a persistently
        # broken engine must not keep circulating.
        batched = pool.infer(feeds)
        assert batched["mode"] == "batched"
        self._assert_outputs_equal(batched["outputs"], degraded["outputs"])
        pool.close()
