"""Integration tests: quantized execution through the compiled plans.

The quantized executor routes every compute operator through the
instruction kernel its plan selected; outputs must track the float
reference within quantization error.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_model
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.runtime.executor import QuantizedExecutor
from tests.conftest import small_cnn


def _relative_error(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(1e-9, float(np.abs(b).max()))
    return float(np.abs(a - b).max()) / scale


class TestQuantizedMatmul:
    def _matmul_graph(self):
        b = GraphBuilder("mm")
        x = b.input((1, 20, 48), name="x")
        b.matmul(x, weight_shape=(48, 24), name="proj")
        return b.build()

    def test_matches_float_reference(self):
        graph = self._matmul_graph()
        compiled = compile_model(graph)
        quantized = QuantizedExecutor(compiled, seed=3)
        feed = {"x": np.random.default_rng(0).normal(size=(1, 20, 48))}
        q_out = quantized.run(feed)["proj"]
        f_out = ReferenceExecutor(compiled.graph, seed=3).run(feed)["proj"]
        assert _relative_error(q_out, f_out) < 0.05

    def test_uses_selected_instruction(self):
        graph = self._matmul_graph()
        compiled = compile_model(graph)
        (compute_node,) = [
            cn for cn in compiled.nodes if cn.node.op.is_compute_heavy
        ]
        assert compute_node.plan.instruction is not None

    def test_batched_attention_product(self):
        b = GraphBuilder("attn")
        q = b.input((1, 2, 8, 16), name="q")
        k = b.input((1, 2, 16, 8), name="k")
        b.matmul(q, k, name="scores")
        compiled = compile_model(b.build())
        feeds = {
            "q": np.random.default_rng(1).normal(size=(1, 2, 8, 16)),
            "k": np.random.default_rng(2).normal(size=(1, 2, 16, 8)),
        }
        q_out = QuantizedExecutor(compiled, seed=0).run(feeds)["scores"]
        f_out = ReferenceExecutor(compiled.graph, seed=0).run(feeds)[
            "scores"
        ]
        assert _relative_error(q_out, f_out) < 0.06


class TestFixedPointRescale:
    """The guarded ``(levels * multiplier) >> shift`` helper."""

    def _node(self):
        from types import SimpleNamespace

        return SimpleNamespace(name="addsub")

    def test_positive_shift_matches_plain_expression(self):
        levels = np.arange(-8, 8, dtype=np.int64)
        out = QuantizedExecutor._fixed_point_rescale(
            self._node(), levels, 16384, 14
        )
        assert np.array_equal(out, (levels * 16384) >> 14)

    def test_negative_shift_prescales_instead_of_shifting(self):
        # A negative right-shift is undefined; the helper pre-scales
        # the multiplier, preserving the value exactly.
        levels = np.arange(-8, 8, dtype=np.int64)
        out = QuantizedExecutor._fixed_point_rescale(
            self._node(), levels, 16384, -3
        )
        assert np.array_equal(out, levels * (16384 << 3))

    def test_extreme_negative_shift_raises(self):
        from repro.errors import QuantizationError

        levels = np.zeros(4, dtype=np.int64)
        with pytest.raises(QuantizationError) as excinfo:
            QuantizedExecutor._fixed_point_rescale(
                self._node(), levels, 16384, -30
            )
        error = excinfo.value
        assert error.stage == "runtime"
        assert error.node == "addsub"
        assert error.details["shift"] == -30

    def test_addsub_path_still_tracks_reference(self):
        # End to end: the guarded helper sits on the live add path.
        b = GraphBuilder("adds")
        x = b.input((1, 4, 8, 8), name="x")
        y = b.relu(x)
        b.add(x, y, name="sum")
        compiled = compile_model(b.build())
        feed = {"x": np.random.default_rng(7).normal(size=(1, 4, 8, 8))}
        q_out = QuantizedExecutor(compiled, seed=1).run(feed)["sum"]
        f_out = ReferenceExecutor(compiled.graph, seed=1).run(feed)["sum"]
        assert _relative_error(q_out, f_out) < 0.05


class TestKernelMacLimit:
    """The direct-product shortcut is bit-identical to the kernels."""

    def test_outputs_identical_above_and_below_limit(self):
        b = GraphBuilder("mm_limit")
        x = b.input((1, 20, 48), name="x")
        b.matmul(x, weight_shape=(48, 24), name="proj")
        compiled = compile_model(b.build())
        feed = {"x": np.random.default_rng(0).normal(size=(1, 20, 48))}
        through_kernels = QuantizedExecutor(compiled, seed=3).run(feed)
        through_blas = QuantizedExecutor(
            compiled, seed=3, kernel_mac_limit=1
        ).run(feed)
        assert np.array_equal(
            through_kernels["proj"], through_blas["proj"]
        )


class TestQuantizedCnn:
    def test_small_cnn_close_to_reference(self):
        compiled = compile_model(small_cnn())
        feed = {
            "image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))
        }
        q_out = QuantizedExecutor(compiled, seed=5).run(feed)
        f_out = ReferenceExecutor(compiled.graph, seed=5).run(feed)
        for name in f_out:
            # Softmax outputs: compare top-1 class and probabilities.
            assert np.argmax(q_out[name]) == np.argmax(f_out[name])
            assert np.abs(q_out[name] - f_out[name]).max() < 0.15

    def test_all_instruction_choices_execute(self):
        # Force each uniform instruction through the runtime.
        from repro.isa.instructions import Opcode

        feed = {
            "image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))
        }
        outputs = {}
        for instr in (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY):
            compiled = compile_model(
                small_cnn(f"cnn_{instr.value}"),
                CompilerOptions(
                    selection="uniform", uniform_instruction=instr
                ),
            )
            outputs[instr] = QuantizedExecutor(compiled, seed=5).run(feed)
        # All three instruction paths compute the same network.
        values = list(outputs.values())
        for other in values[1:]:
            for name in values[0]:
                assert np.abs(values[0][name] - other[name]).max() < 0.1
