"""Integration tests: quantized execution through the compiled plans.

The quantized executor routes every compute operator through the
instruction kernel its plan selected; outputs must track the float
reference within quantization error.
"""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_model
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.runtime.executor import QuantizedExecutor
from tests.conftest import small_cnn


def _relative_error(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(1e-9, float(np.abs(b).max()))
    return float(np.abs(a - b).max()) / scale


class TestQuantizedMatmul:
    def _matmul_graph(self):
        b = GraphBuilder("mm")
        x = b.input((1, 20, 48), name="x")
        b.matmul(x, weight_shape=(48, 24), name="proj")
        return b.build()

    def test_matches_float_reference(self):
        graph = self._matmul_graph()
        compiled = compile_model(graph)
        quantized = QuantizedExecutor(compiled, seed=3)
        feed = {"x": np.random.default_rng(0).normal(size=(1, 20, 48))}
        q_out = quantized.run(feed)["proj"]
        f_out = ReferenceExecutor(compiled.graph, seed=3).run(feed)["proj"]
        assert _relative_error(q_out, f_out) < 0.05

    def test_uses_selected_instruction(self):
        graph = self._matmul_graph()
        compiled = compile_model(graph)
        (compute_node,) = [
            cn for cn in compiled.nodes if cn.node.op.is_compute_heavy
        ]
        assert compute_node.plan.instruction is not None

    def test_batched_attention_product(self):
        b = GraphBuilder("attn")
        q = b.input((1, 2, 8, 16), name="q")
        k = b.input((1, 2, 16, 8), name="k")
        b.matmul(q, k, name="scores")
        compiled = compile_model(b.build())
        feeds = {
            "q": np.random.default_rng(1).normal(size=(1, 2, 8, 16)),
            "k": np.random.default_rng(2).normal(size=(1, 2, 16, 8)),
        }
        q_out = QuantizedExecutor(compiled, seed=0).run(feeds)["scores"]
        f_out = ReferenceExecutor(compiled.graph, seed=0).run(feeds)[
            "scores"
        ]
        assert _relative_error(q_out, f_out) < 0.06


class TestQuantizedCnn:
    def test_small_cnn_close_to_reference(self):
        compiled = compile_model(small_cnn())
        feed = {
            "image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))
        }
        q_out = QuantizedExecutor(compiled, seed=5).run(feed)
        f_out = ReferenceExecutor(compiled.graph, seed=5).run(feed)
        for name in f_out:
            # Softmax outputs: compare top-1 class and probabilities.
            assert np.argmax(q_out[name]) == np.argmax(f_out[name])
            assert np.abs(q_out[name] - f_out[name]).max() < 0.15

    def test_all_instruction_choices_execute(self):
        # Force each uniform instruction through the runtime.
        from repro.isa.instructions import Opcode

        feed = {
            "image": np.random.default_rng(0).normal(size=(1, 3, 16, 16))
        }
        outputs = {}
        for instr in (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY):
            compiled = compile_model(
                small_cnn(f"cnn_{instr.value}"),
                CompilerOptions(
                    selection="uniform", uniform_instruction=instr
                ),
            )
            outputs[instr] = QuantizedExecutor(compiled, seed=5).run(feed)
        # All three instruction paths compute the same network.
        values = list(outputs.values())
        for other in values[1:]:
            for name in values[0]:
                assert np.abs(values[0][name] - other[name]).max() < 0.1
