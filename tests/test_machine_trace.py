"""Tests for the execution trace recorder."""

import numpy as np
import pytest

from repro.codegen.program import build_matmul_program
from repro.core.packing.sda import pack_best
from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet
from repro.machine.trace import TraceRecorder


def _soft_pair_packet():
    load = Instruction(Opcode.VLOAD, dests=("v0",), imms=(0,))
    use = Instruction(Opcode.VADD, dests=("v1",), srcs=("v0", "v0"))
    return Packet([load, use])


class TestTraceRecorder:
    def test_one_entry_per_packet(self):
        recorder = TraceRecorder()
        entries = recorder.run([
            Packet([Instruction(Opcode.NOP)]),
            _soft_pair_packet(),
        ])
        assert len(entries) == 2
        assert entries[0].index == 0
        assert entries[1].index == 1

    def test_start_cycles_monotone_and_contiguous(self):
        recorder = TraceRecorder()
        entries = recorder.run([_soft_pair_packet() for _ in range(3)])
        for previous, current in zip(entries, entries[1:]):
            assert current.start_cycle == previous.end_cycle

    def test_stall_cycles_detected(self):
        recorder = TraceRecorder()
        (entry,) = recorder.run([_soft_pair_packet()])
        assert entry.stall_cycles == 1  # soft RAW interlock
        assert entry.cycles == 4

    def test_no_stall_for_independent_packet(self):
        packet = Packet([
            Instruction(Opcode.VLOAD, dests=("v0",), imms=(0,)),
            Instruction(Opcode.VLOAD, dests=("v1",), imms=(128,)),
        ])
        recorder = TraceRecorder()
        (entry,) = recorder.run([packet])
        assert entry.stall_cycles == 0

    def test_writes_recorded(self):
        recorder = TraceRecorder()
        (entry,) = recorder.run([_soft_pair_packet()])
        assert set(entry.writes) == {"v0", "v1"}

    def test_totals(self):
        recorder = TraceRecorder()
        recorder.run([_soft_pair_packet(), _soft_pair_packet()])
        assert recorder.total_cycles == 8
        assert recorder.total_stalls == 2

    def test_render_marks_stalls(self):
        recorder = TraceRecorder()
        recorder.run([_soft_pair_packet()])
        text = recorder.render()
        assert "*" in text
        assert "vload ; vadd" in text

    def test_render_limit(self):
        recorder = TraceRecorder()
        recorder.run([_soft_pair_packet() for _ in range(5)])
        text = recorder.render(limit=2)
        assert "3 more packets" in text

    def test_traces_whole_programs(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=(8, 4)).astype(np.int8)
        b = rng.integers(-128, 128, size=(4, 3)).astype(np.int8)
        program = build_matmul_program(a.shape, b)
        recorder = TraceRecorder()
        program.load_operands(recorder.state, a)
        entries = recorder.run(pack_best(program.instructions))
        assert entries
        result = program.read_result(recorder.state)
        assert (result == a.astype(np.int32) @ b.astype(np.int32)).all()
