"""Unit tests for the invariant checkers and their structured context."""

import math

import pytest

from repro.compiler import CompilerOptions, GCD2Compiler, compile_model
from repro.core.cost import CostModel
from repro.core.local import solve_local
from repro.errors import (
    GraphError,
    GraphVerificationError,
    ProfileVerificationError,
    ScheduleVerificationError,
    SelectionError,
    SelectionVerificationError,
    VerificationError,
)
from repro.verify import (
    verify_graph,
    verify_profile,
    verify_schedule,
    verify_selection,
)
from repro.verify.checkers import COST_TOLERANCE
from tests.conftest import small_cnn


class TestVerifyGraph:
    def test_clean_graph_passes(self):
        verify_graph(small_cnn())

    def test_dangling_input_id(self):
        graph = small_cnn()
        victim = next(n for n in graph if n.inputs)
        victim.inputs = victim.inputs[:-1] + (4242,)
        with pytest.raises(GraphVerificationError) as excinfo:
            verify_graph(graph)
        error = excinfo.value
        assert error.stage == "graph"
        assert error.node == victim.name
        assert error.details["input_id"] == 4242

    def test_duplicate_node_name(self):
        graph = small_cnn()
        nodes = list(graph)
        nodes[2].name = nodes[1].name
        with pytest.raises(GraphVerificationError) as excinfo:
            verify_graph(graph)
        assert "duplicate" in str(excinfo.value)

    def test_uninferred_shape(self):
        graph = small_cnn()
        next(iter(graph)).output_shape = (0, -3)
        with pytest.raises(GraphVerificationError) as excinfo:
            verify_graph(graph)
        assert "shape" in str(excinfo.value)

    def test_verification_error_is_also_graph_error(self):
        # Callers catching the coarse subsystem error still work.
        graph = small_cnn()
        next(iter(graph)).output_shape = None
        with pytest.raises(GraphError):
            verify_graph(graph)


class TestVerifySelection:
    def _selection(self, graph):
        model = CostModel()
        return model, solve_local(graph, model)

    def test_clean_selection_passes(self):
        graph = small_cnn()
        model, selection = self._selection(graph)
        verify_selection(graph, model, selection)

    def test_skew_within_tolerance_passes(self):
        graph = small_cnn()
        model, selection = self._selection(graph)
        selection.cost *= 1.0 + COST_TOLERANCE / 10.0
        verify_selection(graph, model, selection)

    def test_skew_beyond_tolerance_fails(self):
        graph = small_cnn()
        model, selection = self._selection(graph)
        selection.cost *= 1.01
        with pytest.raises(SelectionVerificationError) as excinfo:
            verify_selection(graph, model, selection)
        details = excinfo.value.details
        assert details["reported"] != details["recomputed"]

    def test_dropped_plan_names_the_node(self):
        graph = small_cnn()
        model, selection = self._selection(graph)
        victim = next(
            node_id
            for node_id, plan in selection.assignment.items()
            if plan.instruction is not None
        )
        del selection.assignment[victim]
        with pytest.raises(SelectionVerificationError) as excinfo:
            verify_selection(graph, model, selection)
        assert excinfo.value.node == graph.node(victim).name

    def test_verification_error_is_also_selection_error(self):
        graph = small_cnn()
        model, selection = self._selection(graph)
        selection.cost = float("inf")
        with pytest.raises(SelectionError):
            verify_selection(graph, model, selection)


class TestVerifySchedule:
    def test_clean_compiled_model_passes(self):
        compiled = compile_model(small_cnn())
        verify_schedule(compiled.nodes)

    def test_nan_cycles_rejected(self):
        compiled = compile_model(small_cnn())
        compiled.nodes[0].cycles = math.nan
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(compiled.nodes)

    def test_shared_cached_schedules_checked_once(self):
        # Identical kernel bodies share one packet list through the
        # compiler cache; the checker still covers every *distinct*
        # schedule and passes.
        compiled = compile_model(small_cnn())
        schedule_ids = {id(cn.packets) for cn in compiled.nodes}
        assert len(schedule_ids) < len(compiled.nodes)
        verify_schedule(compiled.nodes)


class TestVerifyProfile:
    def test_clean_profile_passes(self):
        compiled = compile_model(small_cnn())
        verify_profile(compiled.profile)

    def test_negative_counter_rejected(self):
        compiled = compile_model(small_cnn())
        compiled.profile.bytes_loaded = -1
        with pytest.raises(ProfileVerificationError) as excinfo:
            verify_profile(compiled.profile)
        assert excinfo.value.stage == "profile"

    def test_slot_overflow_rejected(self):
        compiled = compile_model(small_cnn())
        profile = compiled.profile
        profile.issued_instructions = profile.packets * 4 + 1
        with pytest.raises(ProfileVerificationError):
            verify_profile(profile)


class TestErrorRendering:
    def test_structured_str_includes_stage_node_details(self):
        error = VerificationError(
            "invariant broken",
            stage="packing",
            node="conv_1",
            details={"uid": 7},
        )
        rendered = str(error)
        assert "[packing]" in rendered
        assert "node conv_1" in rendered
        assert "uid=7" in rendered

    def test_plain_message_unchanged(self):
        assert str(GraphError("just a message")) == "just a message"


class TestCompilerVerifySwitch:
    def test_verify_off_skips_verifier_timings(self):
        compiled = GCD2Compiler(
            CompilerOptions(verify=False)
        ).compile(small_cnn())
        assert compiled.diagnostics.verifier_seconds == {}
        assert compiled.diagnostics.stage_seconds
