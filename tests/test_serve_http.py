"""HTTP layer of repro.serve: routes, status codes, structured bodies.

Boots a real ``ThreadingHTTPServer`` on an ephemeral port and drives it
with urllib — the same path a curl user takes — asserting that every
error comes back as a :meth:`ReproError.to_dict` body with the right
status code, and that admission rejections carry ``Retry-After``.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ReproError
from repro.graph.serialization import save_graph
from repro.serve import ServeConfig, ServeServer
from repro.serve.chaos import build_chaos_graph


def _request(url, payload=None, method=None):
    """Return ``(status, body_dict, headers)`` without raising on 4xx/5xx."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture(scope="module")
def graph_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("graphs") / "chaos_cnn.json"
    save_graph(build_chaos_graph(), str(path))
    return str(path)


@pytest.fixture(scope="module")
def server(tmp_path_factory, graph_path):
    config = ServeConfig(
        cache_dir=str(tmp_path_factory.mktemp("serve-cache")),
        graph_root=os.path.dirname(graph_path),
        retry_backoff_s=0.01,
    )
    with ServeServer(config) as srv:
        status, body, _ = _request(
            f"{srv.url}/models",
            {"name": "m1", "source": graph_path, "wait": True},
        )
        assert status == 200 and body["job"]["state"] == "done", body
        yield srv


class TestRoutes:
    def test_healthz(self, server):
        status, body, _ = _request(f"{server.url}/healthz")
        assert status == 200 and body == {"ok": True}

    def test_status_lists_models_and_diagnostics(self, server):
        status, body, _ = _request(f"{server.url}/status")
        assert status == 200
        assert body["models"][0]["name"] == "m1"
        assert body["models"][0]["state"] == "ready"
        assert "degradations" in body["diagnostics"]

    def test_model_listing_and_detail(self, server):
        status, body, _ = _request(f"{server.url}/models")
        assert status == 200
        assert [m["name"] for m in body["models"]] == ["m1"]
        status, body, _ = _request(f"{server.url}/models/m1")
        assert status == 200
        assert body["artifact"]["operators"] > 0

    def test_job_view(self, server):
        status, body, _ = _request(f"{server.url}/jobs/job-1")
        assert status == 200
        assert body["state"] == "done"
        assert body["model"] == "m1"

    def test_lint_and_leaderboard_views(self, server):
        status, lint, _ = _request(f"{server.url}/models/m1/lint")
        assert status == 200 and "summary" in lint
        status, board, _ = _request(
            f"{server.url}/models/m1/leaderboard?limit=3"
        )
        assert status == 200 and board["rows"] == []

    def test_infer_with_synthetic_feeds(self, server):
        status, body, _ = _request(
            f"{server.url}/models/m1/infer", {"batch": 2, "seed": 5}
        )
        assert status == 200
        assert body["mode"] == "batched"
        assert len(body["outputs"]) == 2

    def test_infer_with_explicit_feeds_matches_synthetic(self, server):
        from repro.harness import example_feeds

        graph = server.service.registry.get("m1").compiled.graph
        feeds = example_feeds(graph, count=1, seed=5)[0]
        payload = {
            "feeds": [
                {name: value.tolist() for name, value in feeds.items()}
            ]
        }
        _, explicit, _ = _request(
            f"{server.url}/models/m1/infer", payload
        )
        _, synthetic, _ = _request(
            f"{server.url}/models/m1/infer", {"batch": 1, "seed": 5}
        )
        assert explicit["outputs"] == synthetic["outputs"]


class TestErrorBodies:
    def test_unknown_route_is_404_graph_error(self, server):
        status, body, _ = _request(f"{server.url}/nope")
        assert status == 404
        assert body["code"] == "graph-error"

    def test_unknown_model_is_404(self, server):
        status, body, _ = _request(
            f"{server.url}/models/ghost/infer", {"batch": 1}
        )
        assert status == 404
        assert body["code"] == "graph-error"
        assert "ghost" in body["message"]

    def test_unknown_job_is_404(self, server):
        status, body, _ = _request(f"{server.url}/jobs/job-999")
        assert status == 404

    def test_malformed_json_body_is_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/models/m1/infer",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                status, body = resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            status, body = exc.code, json.loads(exc.read())
        assert status == 400
        assert body["code"] == "service-error"
        assert "JSON" in body["message"]

    def test_register_without_name_is_400(self, server):
        status, body, _ = _request(f"{server.url}/models", {})
        assert status == 400
        assert body["code"] == "service-error"

    def test_infer_deadline_is_504(self, server):
        status, body, _ = _request(
            f"{server.url}/models/m1/infer",
            {"batch": 1, "deadline_s": 1e-6},
        )
        assert status == 504
        assert body["code"] == "deadline-exceeded"

    def test_error_bodies_round_trip_via_from_dict(self, server):
        _, body, _ = _request(f"{server.url}/models/ghost/infer", {})
        revived = ReproError.from_dict(body)
        assert revived.code == "graph-error"
        assert "ghost" in revived.message

    def test_bad_register_deadline_is_400_and_not_registered(
        self, server, graph_path
    ):
        status, body, _ = _request(
            f"{server.url}/models",
            {
                "name": "bad_deadline",
                "source": graph_path,
                "deadline_s": "yesterday",
            },
        )
        assert status == 400
        assert body["code"] == "service-error"
        assert body["details"]["field"] == "deadline_s"
        status, _, _ = _request(f"{server.url}/models/bad_deadline")
        assert status == 404

    def test_non_positive_infer_deadline_is_400(self, server):
        status, body, _ = _request(
            f"{server.url}/models/m1/infer",
            {"batch": 1, "deadline_s": 0},
        )
        assert status == 400
        assert body["code"] == "service-error"

    def test_non_integer_batch_is_400(self, server):
        status, body, _ = _request(
            f"{server.url}/models/m1/infer", {"batch": "two"}
        )
        assert status == 400
        assert body["code"] == "service-error"

    def test_unexpected_exception_is_500_internal_error(self, server):
        def boom(*args, **kwargs):
            raise RuntimeError("server-side bug")

        original = server.service.infer
        server.service.infer = boom
        try:
            status, body, _ = _request(
                f"{server.url}/models/m1/infer", {"batch": 1}
            )
        finally:
            server.service.infer = original
        assert status == 500
        assert body["code"] == "internal-error"

    def test_filesystem_probe_source_is_rejected(self, server):
        for probe in ("/etc/passwd", "../../secrets.json"):
            status, body, _ = _request(
                f"{server.url}/models",
                {"name": "probe", "source": probe},
            )
            assert status == 404
            assert body["code"] == "graph-error"
            assert "escapes" in body["message"]


class TestAdmissionOverHttp:
    def test_queue_overflow_is_429_with_retry_after(
        self, tmp_path, graph_path
    ):
        gate = threading.Event()
        config = ServeConfig(
            cache_dir=str(tmp_path / "cache"),
            graph_root=os.path.dirname(graph_path),
            queue_capacity=1,
            retry_after_s=7.0,
        )
        with ServeServer(config) as srv:
            # Hold the single worker hostage mid-compile so the queue
            # stays full for the duration of the assertion.
            def block(artefact):
                gate.wait(timeout=60)
                return artefact

            srv.service.fault_hooks["graph"] = block
            try:
                _request(
                    f"{srv.url}/models",
                    {"name": "busy", "source": graph_path},
                )
                _request(
                    f"{srv.url}/models",
                    {"name": "queued", "source": graph_path},
                )
                status, body, headers = _request(
                    f"{srv.url}/models",
                    {"name": "rejected", "source": graph_path},
                )
                assert status == 429
                assert body["code"] == "admission-error"
                assert body["details"]["retry_after_s"] == 7.0
                assert headers["Retry-After"] == "7"
            finally:
                gate.set()


class TestRegisterSemantics:
    def test_async_register_returns_202_then_job_completes(
        self, tmp_path, graph_path
    ):
        config = ServeConfig(
            cache_dir=str(tmp_path / "cache"),
            graph_root=os.path.dirname(graph_path),
        )
        with ServeServer(config) as srv:
            status, body, _ = _request(
                f"{srv.url}/models",
                {"name": "later", "source": graph_path},
            )
            assert status in (200, 202)
            job_id = body["job"]["job_id"]
            job = srv.service.jobs.job(job_id)
            assert job.wait(timeout=120)
            status, body, _ = _request(f"{srv.url}/jobs/{job_id}")
            assert status == 200 and body["state"] == "done"
