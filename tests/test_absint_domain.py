"""Unit tests for the interval abstract domain."""

import math

import numpy as np
import pytest

from repro.absint.domain import Interval, unary_image


class TestConstruction:
    def test_point(self):
        iv = Interval.point(3.5)
        assert iv.lo == iv.hi == 3.5

    def test_symmetric(self):
        iv = Interval.symmetric(2.0)
        assert iv.lo == -2.0 and iv.hi == 2.0

    def test_symmetric_takes_magnitude(self):
        assert Interval.symmetric(-2.0) == Interval(-2.0, 2.0)

    def test_top_is_infinite(self):
        top = Interval.top()
        assert math.isinf(top.lo) and math.isinf(top.hi)
        assert not top.is_finite

    def test_nan_endpoint_becomes_top(self):
        iv = Interval(float("nan"), 1.0)
        assert not iv.is_finite
        assert iv.contains(1e300)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_hull_of_intervals(self):
        iv = Interval.hull_of(
            [Interval.point(3.0), Interval(-1.0, 2.0)]
        )
        assert iv == Interval(-1.0, 3.0)

    def test_hull_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            Interval.hull_of([])


class TestQueries:
    def test_abs_max(self):
        assert Interval(-3.0, 2.0).abs_max == 3.0
        assert Interval(1.0, 5.0).abs_max == 5.0

    def test_contains(self):
        iv = Interval(-1.0, 1.0)
        assert iv.contains(0.0)
        assert iv.contains(-1.0) and iv.contains(1.0)
        assert not iv.contains(1.0000001)

    def test_contains_interval(self):
        outer = Interval(-2.0, 2.0)
        assert outer.contains_interval(Interval(-1.0, 2.0))
        assert not outer.contains_interval(Interval(-3.0, 0.0))


class TestArithmetic:
    def test_add(self):
        iv = Interval(1, 2).add(Interval(10, 20))
        assert iv.contains_interval(Interval(11, 22))
        assert iv.lo == pytest.approx(11) and iv.hi == pytest.approx(22)

    def test_sub(self):
        iv = Interval(1, 2).sub(Interval(10, 20))
        assert iv.contains_interval(Interval(-19, -8))
        assert iv.lo == pytest.approx(-19)
        assert iv.hi == pytest.approx(-8)

    def test_mul_sign_cases(self):
        prod = Interval(-2.0, 3.0).mul(Interval(-5.0, 1.0))
        # Corners: min/max over {10, -2, -15, 3}, then widened.
        assert prod.contains_interval(Interval(-15.0, 10.0))
        assert prod.lo == pytest.approx(-15.0)
        assert prod.hi == pytest.approx(10.0)

    def test_mul_with_infinity_is_top(self):
        assert Interval(0.0, 1.0).mul(Interval.top()) == Interval.top()

    def test_scaled(self):
        assert Interval(-1.0, 2.0).scaled(-3.0) == Interval(-6.0, 3.0)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_intersect(self):
        assert Interval(0, 4).intersect(Interval(2, 9)) == Interval(2, 4)

    def test_widened_grows_outward(self):
        iv = Interval(-1.0, 1.0)
        wide = iv.widened()
        assert wide.lo < iv.lo and wide.hi > iv.hi
        assert wide.contains_interval(iv)


class TestUnaryImage:
    def test_monotone_function(self):
        iv = unary_image(np.exp, Interval(0.0, 1.0))
        assert iv.contains(1.0) and iv.contains(math.e)

    def test_critical_point_captures_interior_extremum(self):
        # x^2 over [-2, 3]: minimum at the interior critical point 0.
        iv = unary_image(np.square, Interval(-2.0, 3.0),
                         critical_points=(0.0,))
        assert iv.contains(0.0)
        assert iv.contains(9.0)

    def test_critical_point_outside_range_ignored(self):
        iv = unary_image(np.square, Interval(1.0, 2.0),
                         critical_points=(0.0,))
        assert iv.lo >= 1.0 - 1e-6


class TestSoundnessOnSamples:
    """The domain ops over-approximate concrete arithmetic."""

    def test_add_mul_random(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            a_lo, a_hi = sorted(rng.normal(size=2))
            b_lo, b_hi = sorted(rng.normal(size=2))
            a = Interval(a_lo, a_hi)
            b = Interval(b_lo, b_hi)
            xs = rng.uniform(a_lo, a_hi, size=8)
            ys = rng.uniform(b_lo, b_hi, size=8)
            for x, y in zip(xs, ys):
                assert a.add(b).contains(x + y)
                assert a.sub(b).contains(x - y)
                assert a.mul(b).widened().contains(x * y)
