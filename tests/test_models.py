"""Tests for the model zoo against Table IV's reference data."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graph.execute import ReferenceExecutor
from repro.models import MODELS, build_model, model_names
from repro.models.classification import build_resnet50
from repro.models.generative import build_wdsr_b
from repro.models.transformers import build_tinybert


class TestRegistry:
    def test_eleven_models_registered(self):
        assert len(MODELS) == 11
        assert set(model_names()) == set(MODELS)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            build_model("alexnet")

    def test_cache_returns_same_object(self):
        a = build_model("mobilenet_v3")
        b = build_model("mobilenet_v3")
        assert a is b

    def test_cache_bypass(self):
        a = build_model("mobilenet_v3")
        b = build_model("mobilenet_v3", use_cache=False)
        assert a is not b

    def test_support_flags(self):
        assert not MODELS["tinybert"].supported_by_tflite
        assert MODELS["resnet50"].supported_by_snpe
        assert not MODELS["efficientdet_d0"].supported_by_snpe


@pytest.mark.parametrize("name", model_names())
class TestEveryModel:
    def test_builds_and_validates(self, name):
        graph = build_model(name)
        graph.validate()
        assert graph.operator_count() > 0

    def test_macs_close_to_paper(self, name):
        # Structural fidelity: within 15% of Table IV's #MACS column.
        graph = build_model(name)
        info = MODELS[name]
        ratio = graph.total_macs() / (info.paper_gmacs * 1e9)
        assert 0.85 <= ratio <= 1.15, f"{name}: MAC ratio {ratio:.2f}"

    def test_single_connected_output_region(self, name):
        graph = build_model(name)
        assert graph.output_nodes()

    def test_has_compute_operators(self, name):
        graph = build_model(name)
        assert any(n.op.is_compute_heavy for n in graph)


class TestArchitectureDetails:
    def test_resnet50_structure(self):
        graph = build_resnet50()
        convs = [n for n in graph if n.op_type == "Conv2D"]
        # 53 convolutions in ResNet-50 (incl. projection shortcuts).
        assert len(convs) == 53
        assert graph.node(convs[0].node_id).output_shape == (
            1, 64, 112, 112
        )

    def test_wdsr_parameter_budget(self):
        # Table IV: only 22.2K parameters.
        graph = build_wdsr_b()
        params = 0
        for node in graph:
            dims = graph.node_matmul_dims(node.node_id)
            if dims and node.op.is_compute_heavy:
                _, k, n = dims
                params += k * n
        assert params < 60_000

    def test_tinybert_contains_gating_operators(self):
        # Pow and activation-by-activation MatMuls are what block
        # TFLite/SNPE from running it on the DSP.
        graph = build_tinybert()
        op_types = {n.op_type for n in graph}
        assert "Pow" in op_types
        assert "Softmax" in op_types
        two_operand_matmuls = [
            n
            for n in graph
            if n.op_type == "MatMul" and len(n.inputs) == 2
        ]
        assert two_operand_matmuls

    def test_transformer_operator_counts_close(self):
        for name in ("tinybert", "conformer"):
            graph = build_model(name)
            paper = MODELS[name].paper_operators
            assert graph.operator_count() >= paper * 0.5

    def test_small_variant_executes(self):
        # Reduced-size WDSR runs through the reference executor.
        graph = build_wdsr_b(input_size=24, blocks=2)
        out = ReferenceExecutor(graph).run()
        (value,) = out.values()
        assert value.shape == (1, 3, 48, 48)

    def test_small_tinybert_executes(self):
        graph = build_tinybert(seq=8)
        out = ReferenceExecutor(graph).run(
            {"token_ids": np.zeros((1, 8))}
        )
        (value,) = out.values()
        assert value.shape == (1, 2)
        assert value.sum() == pytest.approx(1.0)
