"""Tests for convolution codegen: im2col GEMM path and vtmpy depthwise."""

import numpy as np
import pytest

from repro.codegen.conv2d import (
    conv2d_int32,
    depthwise3_vtmpy_int32,
    depthwise_conv2d_int32,
    im2col_int8,
)
from repro.errors import CodegenError
from repro.isa.instructions import Opcode

PRIMARY = (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY)


def _reference_conv(x, w, stride, padding):
    x = x.astype(np.int64)
    w = w.astype(np.int64)
    oc, c, kh, kw = w.shape
    ph, pw = padding
    sh, sw = stride
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n = x.shape[0]
    oh = (xp.shape[2] - kh) // sh + 1
    ow = (xp.shape[3] - kw) // sw + 1
    out = np.zeros((n, oc, oh, ow), dtype=np.int64)
    for b in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestIm2col:
    def test_shape(self):
        x = np.zeros((1, 3, 8, 8), dtype=np.int8)
        cols = im2col_int8(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (64, 27)

    def test_rejects_non_nchw(self):
        with pytest.raises(CodegenError):
            im2col_int8(np.zeros((3, 8, 8), np.int8), (3, 3), (1, 1), (1, 1))

    def test_rejects_collapsed_output(self):
        with pytest.raises(CodegenError):
            im2col_int8(np.zeros((1, 1, 2, 2), np.int8), (5, 5), (1, 1), (0, 0))


class TestConv2dInt32:
    @pytest.mark.parametrize("instr", PRIMARY)
    @pytest.mark.parametrize(
        "cfg",
        [
            ((1, 3, 8, 8), 4, (3, 3), (1, 1), (1, 1)),
            ((1, 8, 6, 6), 16, (1, 1), (1, 1), (0, 0)),
            ((2, 4, 9, 9), 6, (3, 3), (2, 2), (1, 1)),
            ((1, 2, 12, 10), 3, (5, 5), (1, 1), (2, 2)),
        ],
    )
    def test_exact_against_reference(self, instr, cfg):
        in_shape, oc, kernel, stride, padding = cfg
        rng = np.random.default_rng(hash(cfg) % (2**31))
        x = rng.integers(-128, 128, size=in_shape).astype(np.int8)
        w = rng.integers(
            -128, 128, size=(oc, in_shape[1]) + kernel
        ).astype(np.int8)
        got = conv2d_int32(x, w, instr, stride=stride, padding=padding)
        expected = _reference_conv(x, w, stride, padding)
        assert got.shape == expected.shape
        assert (got == expected).all()

    def test_channel_mismatch_rejected(self):
        with pytest.raises(CodegenError):
            conv2d_int32(
                np.zeros((1, 3, 8, 8), np.int8),
                np.zeros((4, 5, 3, 3), np.int8),
                Opcode.VRMPY,
            )

    def test_bad_weight_rank_rejected(self):
        with pytest.raises(CodegenError):
            conv2d_int32(
                np.zeros((1, 3, 8, 8), np.int8),
                np.zeros((4, 27), np.int8),
                Opcode.VRMPY,
            )


class TestVtmpyDepthwise:
    def test_row_formula(self):
        row = np.arange(-10, 120, dtype=np.int8)
        taps = (2, -3, 5)
        out = depthwise3_vtmpy_int32(row, taps)
        r = row.astype(np.int64)
        expected = r[:-2] * 2 + r[1:-1] * -3 + r[2:] * 5
        assert (out == expected).all()

    def test_long_rows_cross_vector_boundaries(self):
        rng = np.random.default_rng(0)
        row = rng.integers(-128, 128, size=500).astype(np.int8)
        taps = (1, 2, 3)
        out = depthwise3_vtmpy_int32(row, taps)
        r = row.astype(np.int64)
        expected = r[:-2] + 2 * r[1:-1] + 3 * r[2:]
        assert (out == expected).all()

    def test_short_row_rejected(self):
        with pytest.raises(CodegenError):
            depthwise3_vtmpy_int32(np.zeros(2, np.int8), (1, 1, 1))

    def test_full_depthwise_matches_reference(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-128, 128, size=(1, 3, 10, 12)).astype(np.int8)
        w = rng.integers(-128, 128, size=(3, 3, 3)).astype(np.int8)
        got = depthwise_conv2d_int32(x, w, padding=(1, 1))
        # Per-channel reference via the dense conv reference.
        for ch in range(3):
            dense_w = np.zeros((1, 1, 3, 3), dtype=np.int8)
            dense_w[0, 0] = w[ch]
            expected = _reference_conv(
                x[:, ch:ch + 1], dense_w, (1, 1), (1, 1)
            )
            assert (got[:, ch:ch + 1] == expected).all()

    def test_depthwise_shape_checks(self):
        with pytest.raises(CodegenError):
            depthwise_conv2d_int32(
                np.zeros((1, 3, 8, 8), np.int8),
                np.zeros((3, 5, 5), np.int8),
            )
        with pytest.raises(CodegenError):
            depthwise_conv2d_int32(
                np.zeros((1, 3, 8, 8), np.int8),
                np.zeros((4, 3, 3), np.int8),
            )
