"""Unit tests for operator shape inference and MAC accounting."""

import pytest

from repro.errors import ShapeError
from repro.graph import ops


class TestConv2D:
    def test_same_padding_shape(self):
        op = ops.Conv2D(out_channels=8, kernel=3, stride=1, padding=1)
        assert op.infer_shape([(1, 3, 32, 32)]) == (1, 8, 32, 32)

    def test_strided_shape(self):
        op = ops.Conv2D(out_channels=64, kernel=7, stride=2, padding=3)
        assert op.infer_shape([(1, 3, 224, 224)]) == (1, 64, 112, 112)

    def test_macs(self):
        op = ops.Conv2D(out_channels=8, kernel=3, stride=1, padding=1)
        out = op.infer_shape([(1, 4, 8, 8)])
        assert op.macs([(1, 4, 8, 8)], out) == 8 * 8 * 8 * 4 * 9

    def test_grouped_channels_divisibility(self):
        op = ops.Conv2D(out_channels=8, kernel=1, padding=0, groups=3)
        with pytest.raises(ShapeError):
            op.infer_shape([(1, 4, 8, 8)])

    def test_collapsed_output_rejected(self):
        op = ops.Conv2D(out_channels=8, kernel=9, stride=1, padding=0)
        with pytest.raises(ShapeError):
            op.infer_shape([(1, 3, 4, 4)])

    def test_matmul_dims_im2col(self):
        op = ops.Conv2D(out_channels=64, kernel=3, stride=1, padding=1)
        out = op.infer_shape([(1, 32, 16, 16)])
        assert op.matmul_dims([(1, 32, 16, 16)], out) == (256, 288, 64)

    def test_is_compute_heavy(self):
        assert ops.Conv2D().is_compute_heavy
        assert not ops.Conv2D().is_layout_transform


class TestDepthwiseConv2D:
    def test_shape_preserves_channels(self):
        op = ops.DepthwiseConv2D(kernel=3, stride=1, padding=1)
        assert op.infer_shape([(1, 16, 8, 8)]) == (1, 16, 8, 8)

    def test_multiplier(self):
        op = ops.DepthwiseConv2D(kernel=3, padding=1, multiplier=2)
        assert op.infer_shape([(1, 16, 8, 8)]) == (1, 32, 8, 8)

    def test_macs_linear_in_channels(self):
        op = ops.DepthwiseConv2D(kernel=3, padding=1)
        out = op.infer_shape([(1, 16, 8, 8)])
        assert op.macs([(1, 16, 8, 8)], out) == 16 * 64 * 9


class TestTransposeConv2D:
    def test_upsamples(self):
        op = ops.TransposeConv2D(out_channels=8, kernel=4, stride=2, padding=1)
        assert op.infer_shape([(1, 16, 8, 8)]) == (1, 8, 16, 16)


class TestMatMul:
    def test_weighted_form(self):
        op = ops.MatMul(weight_shape=(64, 32))
        assert op.infer_shape([(1, 10, 64)]) == (1, 10, 32)

    def test_two_operand_form(self):
        op = ops.MatMul()
        assert op.infer_shape([(1, 4, 10, 16), (1, 4, 16, 10)]) == (
            1, 4, 10, 10
        )

    def test_transpose_b(self):
        op = ops.MatMul(transpose_b=True)
        assert op.infer_shape([(2, 8), (4, 8)]) == (2, 4)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            ops.MatMul().infer_shape([(2, 8), (9, 4)])

    def test_macs(self):
        op = ops.MatMul(weight_shape=(8, 4))
        out = op.infer_shape([(3, 8)])
        assert op.macs([(3, 8)], out) == 3 * 8 * 4

    def test_matmul_dims_flattens_batch(self):
        op = ops.MatMul(weight_shape=(16, 4))
        out = op.infer_shape([(2, 5, 16)])
        assert op.matmul_dims([(2, 5, 16)], out) == (10, 16, 4)


class TestElementwise:
    def test_broadcast(self):
        op = ops.Add()
        assert op.infer_shape([(1, 8, 4, 4), (1, 8, 1, 1)]) == (1, 8, 4, 4)

    def test_broadcast_rank_extension(self):
        op = ops.Mul()
        assert op.infer_shape([(2, 3, 4), (4,)]) == (2, 3, 4)

    def test_incompatible_broadcast(self):
        with pytest.raises(ShapeError):
            ops.Add().infer_shape([(1, 3, 4), (1, 5, 4)])

    def test_three_way_add(self):
        assert ops.Add().infer_shape([(2, 2), (2, 2), (2, 2)]) == (2, 2)

    def test_elementwise_has_no_macs(self):
        op = ops.Add()
        assert op.macs([(4, 4), (4, 4)], (4, 4)) == 0


class TestActivations:
    @pytest.mark.parametrize(
        "op",
        [
            ops.ReLU(), ops.ReLU6(), ops.HardSwish(), ops.Sigmoid(),
            ops.Tanh(), ops.GELU(), ops.Softmax(), ops.LayerNorm(),
            ops.InstanceNorm(), ops.BatchNorm(),
        ],
    )
    def test_shape_preserved(self, op):
        assert op.infer_shape([(1, 8, 4, 4)]) == (1, 8, 4, 4)

    def test_activation_single_input(self):
        with pytest.raises(ShapeError):
            ops.ReLU().infer_shape([(1, 2), (1, 2)])


class TestPoolingAndReduction:
    def test_max_pool(self):
        op = ops.MaxPool2D(kernel=2, stride=2)
        assert op.infer_shape([(1, 8, 16, 16)]) == (1, 8, 8, 8)

    def test_pool_with_padding(self):
        op = ops.MaxPool2D(kernel=3, stride=2, padding=1)
        assert op.infer_shape([(1, 64, 112, 112)]) == (1, 64, 56, 56)

    def test_global_avg_pool(self):
        assert ops.GlobalAvgPool().infer_shape([(1, 32, 7, 7)]) == (
            1, 32, 1, 1
        )

    def test_reduce_mean_keepdims(self):
        assert ops.ReduceMean(axis=-1).infer_shape([(1, 10, 16)]) == (
            1, 10, 1
        )

    def test_resize(self):
        assert ops.Resize2D(scale=2).infer_shape([(1, 8, 4, 4)]) == (
            1, 8, 8, 8
        )

    def test_depth_to_space(self):
        assert ops.DepthToSpace(block=2).infer_shape([(1, 12, 4, 4)]) == (
            1, 3, 8, 8
        )

    def test_depth_to_space_divisibility(self):
        with pytest.raises(ShapeError):
            ops.DepthToSpace(block=2).infer_shape([(1, 7, 4, 4)])


class TestStructural:
    def test_reshape_with_wildcard(self):
        op = ops.Reshape(target=(1, -1))
        assert op.infer_shape([(1, 8, 4, 4)]) == (1, 128)

    def test_reshape_element_count_checked(self):
        with pytest.raises(ShapeError):
            ops.Reshape(target=(1, 100)).infer_shape([(1, 8, 4, 4)])

    def test_reshape_multiple_wildcards_rejected(self):
        with pytest.raises(ShapeError):
            ops.Reshape(target=(-1, -1)).infer_shape([(4, 4)])

    def test_reshape_is_layout_transform(self):
        assert ops.Reshape(target=(1,)).is_layout_transform
        assert ops.Transpose(perm=(0,)).is_layout_transform

    def test_transpose(self):
        op = ops.Transpose(perm=(0, 2, 1, 3))
        assert op.infer_shape([(1, 2, 3, 4)]) == (1, 3, 2, 4)

    def test_transpose_default_reverses(self):
        assert ops.Transpose().infer_shape([(2, 3, 4)]) == (4, 3, 2)

    def test_transpose_invalid_perm(self):
        with pytest.raises(ShapeError):
            ops.Transpose(perm=(0, 0, 1)).infer_shape([(1, 2, 3)])

    def test_concat(self):
        op = ops.Concat(axis=1)
        assert op.infer_shape([(1, 3, 4, 4), (1, 5, 4, 4)]) == (1, 8, 4, 4)

    def test_concat_mismatch(self):
        with pytest.raises(ShapeError):
            ops.Concat(axis=1).infer_shape([(1, 3, 4, 4), (1, 5, 4, 5)])

    def test_slice(self):
        op = ops.Slice(axis=1, begin=2, length=3)
        assert op.infer_shape([(1, 10, 4)]) == (1, 3, 4)

    def test_slice_out_of_range(self):
        with pytest.raises(ShapeError):
            ops.Slice(axis=1, begin=8, length=5).infer_shape([(1, 10)])

    def test_pad(self):
        assert ops.Pad(pads=2).infer_shape([(1, 3, 8, 8)]) == (1, 3, 12, 12)

    def test_embedding(self):
        op = ops.Embedding(vocab=100, dim=16)
        assert op.infer_shape([(1, 12)]) == (1, 12, 16)

    def test_sources_take_no_inputs(self):
        with pytest.raises(ShapeError):
            ops.Input(shape=(1,)).infer_shape([(1,)])
        with pytest.raises(ShapeError):
            ops.Constant(shape=(1,)).infer_shape([(1,)])
