"""Unit tests for the functional machine simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import semantics
from repro.isa.instructions import Instruction, Opcode, VECTOR_BYTES
from repro.machine.packet import Packet
from repro.machine.simulator import MachineState, Simulator


@pytest.fixture
def sim():
    return Simulator(MachineState(memory_size=1 << 16))


class TestMemory:
    def test_roundtrip(self, sim):
        data = np.arange(256, dtype=np.uint8)
        sim.state.write_array(100, data)
        back = sim.state.read_array(100, (256,), np.uint8)
        assert (back == data).all()

    def test_out_of_bounds_load(self, sim):
        with pytest.raises(SimulationError):
            sim.state.load_bytes(sim.state.memory_size - 10, 100)

    def test_out_of_bounds_store(self, sim):
        with pytest.raises(SimulationError):
            sim.state.store_bytes(-1, np.zeros(4, dtype=np.uint8))

    def test_traffic_counters(self, sim):
        sim.state.load_bytes(0, 128)
        sim.state.store_bytes(0, np.zeros(64, dtype=np.uint8))
        assert sim.state.bytes_loaded == 128
        assert sim.state.bytes_stored == 64


class TestVectorMemoryOps:
    def test_vload_vstore_roundtrip(self, sim):
        payload = np.arange(128, dtype=np.uint8)
        sim.state.write_array(512, payload)
        sim.run([
            Packet([Instruction(Opcode.VLOAD, dests=("v0",), imms=(512,))]),
            Packet([Instruction(Opcode.VSTORE, srcs=("v0",), imms=(1024,))]),
        ])
        out = sim.state.read_array(1024, (128,), np.uint8)
        assert (out == payload).all()

    def test_vload_register_plus_offset_addressing(self, sim):
        payload = np.full(128, 7, dtype=np.uint8)
        sim.state.write_array(300, payload)
        sim.state.registers.write_scalar("r_base", 200)
        sim.run([
            Packet([
                Instruction(
                    Opcode.VLOAD, dests=("v0",), srcs=("r_base",), imms=(100,)
                )
            ]),
        ])
        assert (sim.state.registers.read_vector("v0").data == 7).all()


class TestVectorArithmetic:
    def test_vmpy_matches_semantics(self, sim):
        v = np.random.default_rng(0).integers(-128, 128, 128).astype(np.int8)
        sim.state.write_array(0, v)
        sim.run([
            Packet([Instruction(Opcode.VLOAD, dests=("v0",), imms=(0,))]),
            Packet([
                Instruction(
                    Opcode.VMPY,
                    dests=("v_e", "v_o"),
                    srcs=("v0",),
                    imms=(2, 3, 5, 7),
                )
            ]),
        ])
        even, odd = semantics.vmpy(v, (2, 3, 5, 7))
        assert (sim.state.registers.read_vector("v_e").view(np.int16)
                == even).all()
        assert (sim.state.registers.read_vector("v_o").view(np.int16)
                == odd).all()

    def test_vrmpy_with_accumulator(self, sim):
        v = np.ones(128, dtype=np.int8)
        sim.state.write_array(0, v)
        load = Instruction(Opcode.VLOAD, dests=("v0",), imms=(0,))
        mac = Instruction(
            Opcode.VRMPY,
            dests=("v_acc",),
            srcs=("v0", "v_acc"),
            imms=(1, 1, 1, 1),
        )
        mac2 = Instruction(
            Opcode.VRMPY,
            dests=("v_acc",),
            srcs=("v0", "v_acc"),
            imms=(1, 1, 1, 1),
        )
        sim.run([Packet([load]), Packet([mac]), Packet([mac2])])
        acc = sim.state.registers.read_vector("v_acc").view(np.int32)
        assert (acc == 8).all()  # two rounds of sum of four ones

    def test_vadd_lane_widths(self, sim):
        a = np.arange(64, dtype=np.int16)
        b = np.full(64, 3, dtype=np.int16)
        from repro.isa.registers import VectorRegister

        sim.state.registers.write_vector("v1", VectorRegister.from_lanes(a))
        sim.state.registers.write_vector("v2", VectorRegister.from_lanes(b))
        sim.run([
            Packet([
                Instruction(
                    Opcode.VADD,
                    dests=("v3",),
                    srcs=("v1", "v2"),
                    lane_bytes=2,
                )
            ])
        ])
        out = sim.state.registers.read_vector("v3").view(np.int16)
        assert (out == a + 3).all()


class TestIntraPacketSemantics:
    def test_soft_raw_consumer_sees_fresh_value(self, sim):
        # The hardware interlock: a packed load->use pair is correct.
        payload = np.full(128, 9, dtype=np.uint8)
        sim.state.write_array(0, payload)
        load = Instruction(Opcode.VLOAD, dests=("v1",), imms=(0,))
        use = Instruction(
            Opcode.VADD, dests=("v2",), srcs=("v1", "v1")
        )
        sim.run([Packet([load, use])])
        out = sim.state.registers.read_vector("v2").view(np.int8)
        assert (out == 18).all()

    def test_war_reader_sees_old_value(self, sim):
        from repro.isa.registers import VectorRegister

        sim.state.registers.write_vector(
            "v1", VectorRegister.from_lanes(np.full(128, 5, dtype=np.int8))
        )
        sim.state.write_array(0, np.full(128, 100, dtype=np.uint8))
        reader = Instruction(Opcode.VADD, dests=("v2",), srcs=("v1", "v1"))
        writer = Instruction(Opcode.VLOAD, dests=("v1",), imms=(0,))
        sim.run([Packet([reader, writer])])
        assert (sim.state.registers.read_vector("v2").view(np.int8)
                == 10).all()
        assert (sim.state.registers.read_vector("v1").view(np.uint8)
                == 100).all()


class TestScalarOps:
    def test_scalar_alu(self, sim):
        sim.state.registers.write_scalar("r0", 10)
        sim.run([
            Packet([
                Instruction(Opcode.ADD, dests=("r1",), srcs=("r0",), imms=(5,))
            ]),
            Packet([
                Instruction(Opcode.MUL, dests=("r2",), srcs=("r1", "r1"))
            ]),
        ])
        assert sim.state.registers.read_scalar("r1") == 15
        assert sim.state.registers.read_scalar("r2") == 225

    def test_scalar_load_store(self, sim):
        sim.state.write_array(64, np.array([-7], dtype=np.int32))
        sim.run([
            Packet([Instruction(Opcode.LOAD, dests=("r0",), imms=(64,))]),
            Packet([
                Instruction(Opcode.STORE, srcs=("r0",), imms=(128,))
            ]),
        ])
        assert sim.state.registers.read_scalar("r0") == -7
        assert sim.state.read_array(128, (1,), np.int32)[0] == -7

    def test_lut_lookup(self, sim):
        table = np.arange(100, dtype=np.int32) * 3
        sim.state.write_array(4096, table)
        sim.state.registers.write_scalar("r_idx", 7)
        sim.run([
            Packet([
                Instruction(
                    Opcode.LUT, dests=("r_out",), srcs=("r_idx",), imms=(4096,)
                )
            ])
        ])
        assert sim.state.registers.read_scalar("r_out") == 21

    def test_cycle_accounting(self, sim):
        sim.run([
            Packet([Instruction(Opcode.NOP)]),
            Packet([Instruction(Opcode.VLOAD, dests=("v0",), imms=(0,))]),
        ])
        assert sim.cycles == 1 + 3
        assert sim.packets_executed == 2
