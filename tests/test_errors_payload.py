"""Machine-readable error payloads: to_dict/from_dict round trips.

The same payload backs the CLI's ``--json-errors`` line and the serve
API's 4xx/5xx bodies, so the contract is tested once here: every
registered error class round-trips through its code, details stay
JSON-serializable no matter what was thrown in, and unknown codes
decode to the base class instead of failing.
"""

import json

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    BudgetExceeded,
    DeadlineExceeded,
    GraphError,
    ModelNotReadyError,
    QuarantinedError,
    ReproError,
    SelectionError,
    ServiceError,
    SimulationError,
    _CODE_REGISTRY,
)


class TestCodes:
    def test_codes_are_kebab_case_class_names(self):
        assert DeadlineExceeded.code == "deadline-exceeded"
        assert QuarantinedError.code == "quarantined-error"
        assert ModelNotReadyError.code == "model-not-ready-error"
        assert GraphError.code == "graph-error"
        assert ReproError.code == "repro-error"

    def test_every_subclass_is_registered(self):
        def walk(cls):
            yield cls
            for sub in cls.__subclasses__():
                yield from walk(sub)

        for cls in walk(ReproError):
            assert _CODE_REGISTRY[cls.code] is cls

    def test_codes_are_unique(self):
        codes = list(_CODE_REGISTRY)
        assert len(codes) == len(set(codes))


class TestToDict:
    def test_payload_shape(self):
        exc = SelectionError(
            "no plan for node", stage="selection", node="conv_3",
            details={"plans": 0},
        )
        payload = exc.to_dict()
        assert payload == {
            "error": "SelectionError",
            "code": "selection-error",
            "message": "no plan for node",
            "stage": "selection",
            "node": "conv_3",
            "details": {"plans": 0},
        }

    def test_payload_is_json_serializable_with_numpy_details(self):
        exc = SimulationError(
            "overflow",
            stage="runtime",
            details={
                "value": np.int64(7),
                "scale": np.float64(0.25),
                "shape": (np.int32(1), np.int32(4)),
                "arr": np.array([1.0, 2.0]),
                "nested": {"flag": np.bool_(True)},
            },
        )
        text = json.dumps(exc.to_dict())
        decoded = json.loads(text)
        assert decoded["details"]["value"] == 7
        assert decoded["details"]["scale"] == 0.25
        assert decoded["details"]["shape"] == [1, 4]
        assert decoded["details"]["arr"] == [1.0, 2.0]
        assert decoded["details"]["nested"]["flag"] is True

    def test_unserializable_detail_degrades_to_repr(self):
        exc = ServiceError("x", details={"obj": object()})
        assert isinstance(
            json.loads(json.dumps(exc.to_dict()))["details"]["obj"], str
        )


class TestFromDict:
    @pytest.mark.parametrize(
        "cls",
        [
            ReproError,
            GraphError,
            DeadlineExceeded,
            ServiceError,
            AdmissionError,
            QuarantinedError,
            ModelNotReadyError,
            BudgetExceeded,
        ],
    )
    def test_round_trip_preserves_class_and_fields(self, cls):
        original = cls(
            "something broke",
            stage="serve",
            node="n1",
            details={"retry_after_s": 2.5},
        )
        revived = ReproError.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert type(revived) is cls
        assert str(revived) == str(original)
        assert revived.stage == "serve"
        assert revived.node == "n1"
        assert revived.details == {"retry_after_s": 2.5}

    def test_unknown_code_decodes_to_base_class(self):
        revived = ReproError.from_dict(
            {"code": "not-a-real-code", "message": "hm"}
        )
        assert type(revived) is ReproError
        assert str(revived) == "hm"

    def test_missing_fields_tolerated(self):
        revived = ReproError.from_dict({})
        assert isinstance(revived, ReproError)
        assert revived.details == {}

    def test_service_hierarchy(self):
        assert issubclass(AdmissionError, ServiceError)
        assert issubclass(QuarantinedError, ServiceError)
        assert issubclass(ModelNotReadyError, ServiceError)
        assert issubclass(ServiceError, ReproError)
        # A deadline abort is NOT a budget degradation: the selection
        # ladder absorbs BudgetExceeded but must propagate deadlines.
        assert not issubclass(DeadlineExceeded, BudgetExceeded)


class TestCliJsonErrors:
    def test_json_errors_flag_emits_payload(self, capsys):
        from repro.cli import main

        assert main(["--json-errors", "compile", "alexnet"]) == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.err.strip())
        assert payload["code"] == "graph-error"
        assert payload["error"] == "GraphError"
        assert "alexnet" in payload["message"]
        assert "Traceback" not in captured.err

    def test_json_errors_round_trips_to_same_error(self, capsys):
        from repro.cli import main

        main(["--json-errors", "compile", "alexnet"])
        payload = json.loads(capsys.readouterr().err.strip())
        revived = ReproError.from_dict(payload)
        assert type(revived) is GraphError

    def test_default_error_line_unchanged(self, capsys):
        from repro.cli import main

        assert main(["compile", "alexnet"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: GraphError")
