"""The int8 decoder workload tier: shapes, causality, KV-cache GEMMs."""

import numpy as np
import pytest

from repro.graph import ops
from repro.graph.execute import ReferenceExecutor
from repro.models import MODELS, build_model
from repro.models.transformers import (
    DECODER_HEADS,
    DECODER_HIDDEN,
    DECODER_SEQ_LENS,
    DECODER_VOCAB,
    build_decoder_prefill,
    build_decoder_step,
    build_decoder_tiny,
)


def inputs_of(graph):
    return {
        node.name: node.op.shape
        for node in graph
        if isinstance(node.op, ops.Input)
    }


class TestPrefill:
    def test_causal_mask_is_a_graph_constant(self):
        graph = build_decoder_prefill(seq=16)
        masks = [
            node for node in graph
            if node.name.endswith("_causal_mask")
        ]
        assert len(masks) == 2  # one per block
        assert all(
            node.op.shape == (1, DECODER_HEADS, 16, 16)
            for node in masks
        )

    def test_prompt_input_and_next_token_output(self):
        graph = build_decoder_prefill(seq=16)
        assert inputs_of(graph) == {"prompt_ids": (1, 16)}
        (out,) = graph.output_nodes()
        assert out.name == "prefill_next_token"
        assert out.output_shape == (1, 16, DECODER_VOCAB)


class TestDecodeStep:
    def test_kv_caches_are_inputs_shaped_by_cache_len(self):
        graph = build_decoder_step(cache_len=32)
        head_dim = DECODER_HIDDEN // DECODER_HEADS
        shapes = inputs_of(graph)
        assert shapes["token_id"] == (1, 1)
        assert shapes["step_b0_attn_k_cache"] == (
            1, DECODER_HEADS, head_dim, 32
        )
        assert shapes["step_b0_attn_v_cache"] == (
            1, DECODER_HEADS, 32, head_dim
        )
        assert shapes["step_b1_attn_k_cache"] == (
            1, DECODER_HEADS, head_dim, 32
        )

    def test_single_token_logits(self):
        graph = build_decoder_step(cache_len=32)
        (out,) = graph.output_nodes()
        assert out.output_shape == (1, 1, DECODER_VOCAB)

    def test_step_has_no_causal_mask(self):
        # Every cached position is visible to the new token.
        graph = build_decoder_step(cache_len=32)
        assert not any(
            node.name.endswith("_causal_mask") for node in graph
        )


class TestDecoderTiny:
    def test_one_graph_holds_prefill_plus_all_steps(self):
        graph = build_decoder_tiny()
        assert graph.name == "decoder_tiny"
        names = [out.name for out in graph.output_nodes()]
        assert names == ["prefill_next_token"] + [
            f"step{length}_next_token" for length in DECODER_SEQ_LENS
        ]

    def test_inputs_cover_prompt_tokens_and_caches(self):
        graph = build_decoder_tiny(seq_lens=(8, 16))
        shapes = inputs_of(graph)
        assert shapes["prompt_ids"] == (1, 8)
        assert shapes["step8_token_id"] == (1, 1)
        assert shapes["step16_token_id"] == (1, 1)
        head_dim = DECODER_HIDDEN // DECODER_HEADS
        assert shapes["step16_b1_attn_k_cache"] == (
            1, DECODER_HEADS, head_dim, 16
        )

    def test_rejects_empty_and_degenerate_lengths(self):
        with pytest.raises(ValueError, match="at least one"):
            build_decoder_tiny(seq_lens=())
        with pytest.raises(ValueError, match=">= 2"):
            build_decoder_tiny(seq_lens=(8, 1))

    def test_registered_in_zoo_as_transformer(self):
        info = MODELS["decoder_tiny"]
        assert info.transformer
        assert info.task == "LLM decoding"
        graph = build_model("decoder_tiny")
        assert graph.name == "decoder_tiny"

    def test_executes_end_to_end_with_normalized_logits(self):
        graph = build_decoder_tiny(seq_lens=(4, 8))
        rng = np.random.default_rng(0)
        feeds = {
            node.name: rng.standard_normal(node.op.shape)
            for node in graph
            if isinstance(node.op, ops.Input)
        }
        outputs = ReferenceExecutor(graph).run(feeds)
        probs = outputs["step8_next_token"]
        assert probs.shape == (1, 1, DECODER_VOCAB)
        # Softmax outputs: a probability simplex per position.
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-5)
        assert (probs >= 0).all()

    def test_decode_step_gemms_are_skinny(self):
        """The KV-cache attention GEMMs are 1-row activation matmuls."""
        graph = build_decoder_tiny(seq_lens=(64,))
        qk = next(n for n in graph if n.name == "step64_b0_attn_qk")
        assert qk.output_shape == (1, DECODER_HEADS, 1, 64)
        ctx = next(n for n in graph if n.name == "step64_b0_attn_ctx")
        head_dim = DECODER_HIDDEN // DECODER_HEADS
        assert ctx.output_shape == (1, DECODER_HEADS, 1, head_dim)
