"""Tests for the autotuner's search strategies (repro.tune.search).

Determinism is the load-bearing property: the same (model, space,
strategy, seed) must record byte-identical trials on every run and at
every worker count, because the committed ``BENCH_autotune.json``
artefact and the trial database both assume reproducible searches.
"""

import json

import pytest

from repro.compiler import GCD2Compiler
from repro.errors import TuningError
from repro.tune import (
    DEFAULT_TRIAL_CONFIG,
    Choice,
    ConfigSpace,
    SearchBudget,
    TrialDB,
    default_tune_dir,
    leaderboard,
    run_search,
    trial_metrics,
)
from repro.tune.search import _halving_rungs, _propose_grid, _propose_random
from tests.conftest import small_cnn

#: A deliberately small space so search tests stay fast: the axes that
#: actually move simulated cycles on wdsr_b.
SMALL_SPACE = ConfigSpace([
    Choice("unroll.skinny_seed", ((8, 2), (8, 4), (1, 8))),
    Choice("compiler.max_operators", (9, 13)),
])


def _payloads(result):
    return [json.dumps(r.to_payload(), sort_keys=True)
            for r in result.records]


class TestBudget:
    def test_rejects_zero_trials(self):
        with pytest.raises(TuningError):
            SearchBudget(trials=0)

    def test_rejects_negative_wall_seconds(self):
        with pytest.raises(TuningError):
            SearchBudget(trials=1, wall_seconds=-1.0)


class TestProposers:
    def test_grid_follows_enumeration_order_and_dedupes(self):
        base = DEFAULT_TRIAL_CONFIG
        proposals = _propose_grid(SMALL_SPACE, 10, base)
        fingerprints = [c.fingerprint for c in proposals]
        assert len(set(fingerprints)) == len(fingerprints)
        assert base.fingerprint not in fingerprints
        # (8, 2) x 13 *is* the default config, so one point dedupes away.
        assert len(proposals) == SMALL_SPACE.size - 1

    def test_random_is_seeded(self):
        base = DEFAULT_TRIAL_CONFIG
        a = _propose_random(SMALL_SPACE, 3, 42, base)
        b = _propose_random(SMALL_SPACE, 3, 42, base)
        assert [c.fingerprint for c in a] == [c.fingerprint for c in b]
        c = _propose_random(SMALL_SPACE, 3, 43, base)
        assert [x.fingerprint for x in a] != [x.fingerprint for x in c]

    def test_random_exhausts_small_space_via_grid(self):
        base = DEFAULT_TRIAL_CONFIG
        proposals = _propose_random(SMALL_SPACE, SMALL_SPACE.size, 0, base)
        assert len(proposals) == SMALL_SPACE.size - 1  # minus the default

    def test_halving_rungs_are_strict_prefixes(self):
        assert _halving_rungs(32) == [8, 16]
        assert _halving_rungs(5) == [2]  # 5//2 == 2 dedupes with 5//4
        assert _halving_rungs(2) == []  # no prefix strictly smaller


class TestRunSearch:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(TuningError, match="strategy"):
            run_search("wdsr_b", strategy="annealing")

    def test_bad_jobs_rejected(self):
        with pytest.raises(TuningError, match="jobs"):
            run_search("wdsr_b", jobs=0)

    def test_trial_zero_is_the_default_config(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="random", trials=1, seed=0,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        assert len(result.records) == 1
        record = result.records[0]
        assert record.trial == 0
        assert record.fingerprint == DEFAULT_TRIAL_CONFIG.fingerprint
        assert record.ok and record.full_fidelity
        assert result.baseline == record
        assert result.best == record
        assert result.speedup == 1.0

    def test_best_never_loses_to_baseline(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="random", trials=4, seed=7,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        assert result.best.cycles <= result.baseline.cycles
        assert result.speedup >= 1.0

    def test_same_seed_records_identical_trials(self, tmp_path):
        a = run_search(
            "wdsr_b", strategy="random", trials=4, seed=7,
            cache_dir=str(tmp_path / "a"), space=SMALL_SPACE,
        )
        b = run_search(
            "wdsr_b", strategy="random", trials=4, seed=7,
            cache_dir=str(tmp_path / "b"), space=SMALL_SPACE,
        )
        assert _payloads(a) == _payloads(b)

    def test_jobs_bit_identical_to_serial(self, tmp_path):
        serial = run_search(
            "wdsr_b", strategy="random", trials=4, seed=7, jobs=1,
            cache_dir=str(tmp_path / "serial"), space=SMALL_SPACE,
        )
        parallel = run_search(
            "wdsr_b", strategy="random", trials=4, seed=7, jobs=4,
            cache_dir=str(tmp_path / "parallel"), space=SMALL_SPACE,
        )
        assert _payloads(serial) == _payloads(parallel)

    def test_records_are_durable_in_the_db(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="grid", trials=3, seed=0,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        db = TrialDB(default_tune_dir(str(tmp_path)))
        stored = db.records(model="wdsr_b")
        assert _payloads(result) == [
            json.dumps(r.to_payload(), sort_keys=True) for r in stored
        ]
        assert db.best("wdsr_b").fingerprint == result.best.fingerprint

    def test_halving_promotes_through_fidelity_ladder(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="halving", trials=4, seed=3,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        fidelities = {r.fidelity for r in result.records}
        assert None in fidelities  # the final full-fidelity rung
        assert any(f is not None for f in fidelities)
        # The first rung screens the whole population; the final
        # full-fidelity rung compiles only the survivors (plus the
        # baseline), so it is strictly smaller.
        partial = [r for r in result.records if r.fidelity is not None]
        first_rung = min(r.fidelity for r in partial)
        first_rung_count = sum(
            1 for r in partial if r.fidelity == first_rung
        )
        assert first_rung_count == 4
        assert len(result.full_records) < first_rung_count
        # The baseline always reaches full fidelity.
        assert result.baseline is not None
        assert result.best.cycles <= result.baseline.cycles

    def test_halving_partial_records_never_win_best(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="halving", trials=4, seed=3,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        db = TrialDB(default_tune_dir(str(tmp_path)))
        assert db.best("wdsr_b").full_fidelity

    def test_wall_budget_truncates(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="random", trials=6, seed=7,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
            wall_seconds=1e-9,
        )
        # The baseline batch always runs; the rest is cut short.
        assert result.truncated
        assert 1 <= len(result.records) < 6
        assert result.baseline is not None


class TestReport:
    def test_trial_metrics_shape(self):
        compiled = GCD2Compiler().compile(small_cnn())
        metrics = trial_metrics(compiled)
        assert metrics["simulated_cycles"] == pytest.approx(
            compiled.profile.cycles + compiled.transform_cycles
        )
        assert metrics["stall_cycles"] >= 0
        assert metrics["spill_instructions"] >= 0
        assert metrics["total_packets"] == compiled.total_packets
        assert metrics["selection_solver"] == compiled.selection.solver
        # Scheduling-dependent quantities (cache hits, wall-clock) must
        # never leak into the deterministic trial record.
        assert "cache" not in metrics
        assert not any("seconds" in key for key in metrics)

    def test_leaderboard_orders_by_cycles(self, tmp_path):
        result = run_search(
            "wdsr_b", strategy="random", trials=3, seed=7,
            cache_dir=str(tmp_path), space=SMALL_SPACE,
        )
        rows = leaderboard(
            result.full_records,
            baseline_cycles=result.baseline.cycles,
        )
        cycles = [row["cycles"] for row in rows if row["status"] == "ok"]
        assert cycles == sorted(cycles)
        assert rows[0]["speedup"] >= 1.0

    def test_leaderboard_sinks_failures(self):
        from repro.tune import TrialRecord

        ok = TrialRecord(
            model="m", fingerprint="b" * 64,
            config=DEFAULT_TRIAL_CONFIG.to_payload(), cycles=99.0,
        )
        bad = TrialRecord(
            model="m", fingerprint="a" * 64,
            config=DEFAULT_TRIAL_CONFIG.to_payload(),
            status="error", error="BudgetExceeded: boom",
        )
        rows = leaderboard([bad, ok])
        assert rows[0]["status"] == "ok"
        assert rows[-1]["status"] == "error"
        assert "boom" in rows[-1]["error"]
