"""Unit tests for the execution profiler."""

from fractions import Fraction

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.machine.packet import Packet
from repro.machine.pipeline import PipelineModel
from repro.machine.profiler import ExecutionProfile, Profiler


def _schedule():
    return [
        Packet([
            Instruction(Opcode.VLOAD, dests=("v0",), srcs=("r_a",)),
            Instruction(Opcode.VLOAD, dests=("v1",), srcs=("r_b",)),
        ]),
        Packet([
            Instruction(Opcode.VRMPY, dests=("v2",), srcs=("v0",)),
        ]),
        Packet([
            Instruction(Opcode.VSTORE, srcs=("v2", "r_out")),
        ]),
    ]


class TestProfiler:
    def test_counts_packets_and_instructions(self):
        profiler = Profiler()
        unit = profiler.observe_schedule(_schedule())
        assert unit.packets == 3
        assert unit.issued_instructions == 4
        assert unit.cycles > 0

    def test_counts_memory_traffic(self):
        unit = Profiler().observe_schedule(_schedule())
        assert unit.bytes_loaded == 2 * 128
        assert unit.bytes_stored == 128

    def test_counts_macs(self):
        unit = Profiler().observe_schedule(_schedule())
        assert unit.macs == 128  # one vrmpy

    def test_repeats_scale_linearly(self):
        once = Profiler().observe_schedule(_schedule(), repeats=1)
        thrice = Profiler().observe_schedule(_schedule(), repeats=3)
        assert thrice.cycles == 3 * once.cycles
        assert thrice.bytes_loaded == 3 * once.bytes_loaded

    def test_accumulates_across_observations(self):
        profiler = Profiler()
        profiler.observe_schedule(_schedule())
        profiler.observe_schedule(_schedule())
        assert profiler.profile.packets == 6


class TestExecutionProfile:
    def test_slot_occupancy(self):
        profile = ExecutionProfile(packets=2, issued_instructions=4)
        assert profile.slot_occupancy == pytest.approx(0.5)

    def test_slot_occupancy_empty(self):
        assert ExecutionProfile().slot_occupancy == 0.0

    def test_mac_utilization_bounded(self):
        profile = ExecutionProfile(cycles=1, macs=10**9)
        assert profile.mac_utilization == 1.0
        assert ExecutionProfile().mac_utilization == 0.0

    def test_bandwidth(self):
        profile = ExecutionProfile(
            cycles=1000, bytes_loaded=500, bytes_stored=500
        )
        pipeline = PipelineModel(clock_ghz=1.0)
        assert profile.bandwidth_gbps(pipeline) == pytest.approx(1.0)

    def test_merge(self):
        a = ExecutionProfile(cycles=1, packets=2, macs=3)
        b = ExecutionProfile(cycles=10, packets=20, macs=30)
        merged = a.merge(b)
        assert merged.cycles == 11
        assert merged.packets == 22
        assert merged.macs == 33

    def test_scaled(self):
        profile = ExecutionProfile(cycles=10, bytes_loaded=4)
        scaled = profile.scaled(2.5)
        assert scaled.cycles == 25
        assert scaled.bytes_loaded == 10

    def test_integer_repeats_stay_int(self):
        scaled = ExecutionProfile(cycles=7, macs=3).scaled(4)
        assert scaled.cycles == 28 and isinstance(scaled.cycles, int)
        assert scaled.macs == 12 and isinstance(scaled.macs, int)

    def test_fractional_repeats_merge_exactly(self):
        # Regression: per-counter rounding in ``scaled`` made merged
        # profiles drift from repeats x unit.  Three one-third repeats
        # must reassemble the unit profile exactly — including derived
        # ratios such as bytes_loaded / cycles.
        unit = ExecutionProfile(
            cycles=10, packets=7, issued_instructions=11,
            macs=128, bytes_loaded=256, bytes_stored=128,
        )
        third = unit.scaled(Fraction(1, 3))
        merged = third.merge(third).merge(third)
        assert merged == unit
        assert (
            third.bytes_loaded / third.cycles
            == Fraction(unit.bytes_loaded, unit.cycles)
        )

    def test_rounded_reports_whole_numbers(self):
        half = ExecutionProfile(cycles=7, bytes_loaded=9).scaled(0.5)
        reported = half.rounded()
        assert reported.cycles == round(7 / 2)
        assert reported.bytes_loaded == round(9 / 2)
        assert isinstance(reported.cycles, int)
        assert isinstance(reported.bytes_loaded, int)
