"""Tests for the append-only trial database (repro.tune.db)."""

import json

import pytest

from repro.errors import TuningError
from repro.tune import (
    DEFAULT_TRIAL_CONFIG,
    TrialConfig,
    TrialDB,
    TrialRecord,
    default_tune_dir,
    tune_schema_hash,
)
from repro.tune import db as db_mod


def _record(
    cycles=100.0,
    model="wdsr_b",
    config=None,
    status="ok",
    fidelity=None,
    **kwargs,
):
    config = config or DEFAULT_TRIAL_CONFIG
    return TrialRecord(
        model=model,
        fingerprint=config.fingerprint,
        config=config.to_payload(),
        status=status,
        cycles=cycles,
        fidelity=fidelity,
        **kwargs,
    )


class TestTrialRecord:
    def test_unknown_status_rejected(self):
        with pytest.raises(TuningError, match="status"):
            _record(status="maybe")

    def test_ok_without_cycles_rejected(self):
        with pytest.raises(TuningError, match="cycles"):
            _record(cycles=None)

    def test_error_record_allows_missing_cycles(self):
        record = _record(
            cycles=None, status="error", error="BudgetExceeded: boom"
        )
        assert not record.ok
        assert record.error == "BudgetExceeded: boom"

    def test_payload_round_trip(self):
        record = _record(
            cycles=42.0, strategy="random", seed=7, trial=3,
            metrics={"stall_cycles": 5},
        )
        again = TrialRecord.from_payload(
            json.loads(json.dumps(record.to_payload()))
        )
        assert again == record

    def test_trial_config_rebuilds(self):
        config = TrialConfig(max_operators=17)
        record = _record(config=config)
        assert record.trial_config() == config

    def test_malformed_payload_rejected(self):
        with pytest.raises(TuningError, match="malformed"):
            TrialRecord.from_payload({"model": "x"})


class TestTrialDB:
    def test_append_and_read_back(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record(cycles=10.0, trial=0))
        db.append(_record(cycles=20.0, model="fst", trial=1))
        assert len(db) == 2
        assert [r.model for r in db.records()] == ["wdsr_b", "fst"]
        assert len(db.records(model="fst")) == 1
        assert db.models() == ["fst", "wdsr_b"]

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record())
        with open(db.path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"model": "half a record"}\n')
        assert len(db.records()) == 1
        assert db.skipped_lines == 2

    def test_stale_schema_invalidated(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record(schema="0" * 64))
        db.append(_record(cycles=5.0))
        current = db.records()
        assert [r.cycles for r in current] == [5.0]
        assert db.skipped_lines == 1
        # The stale record is still physically present.
        assert len(db.records(current_only=False)) == 2

    def test_schema_hash_tracks_machine_model(self, monkeypatch):
        before = tune_schema_hash()
        monkeypatch.setattr(db_mod, "TUNE_SCHEMA_VERSION", 999)
        assert tune_schema_hash() != before

    def test_best_minimizes_cycles(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record(cycles=30.0))
        db.append(_record(cycles=10.0, config=TrialConfig(max_operators=9)))
        db.append(_record(cycles=20.0, config=TrialConfig(max_operators=17)))
        best = db.best("wdsr_b")
        assert best.cycles == 10.0
        assert db.best_config("wdsr_b") == TrialConfig(max_operators=9)

    def test_best_ignores_errors_and_partial_fidelity(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record(
            cycles=None, status="error", error="boom",
            config=TrialConfig(max_operators=9),
        ))
        db.append(_record(
            cycles=1.0, fidelity=4,
            config=TrialConfig(max_operators=17),
        ))
        db.append(_record(cycles=50.0))
        best = db.best("wdsr_b")
        assert best.cycles == 50.0
        assert best.full_fidelity

    def test_best_tie_breaks_on_fingerprint(self, tmp_path):
        db = TrialDB(tmp_path)
        a, b = TrialConfig(max_operators=9), TrialConfig(max_operators=17)
        db.append(_record(cycles=10.0, config=a))
        db.append(_record(cycles=10.0, config=b))
        expected = min(a.fingerprint, b.fingerprint)
        assert db.best("wdsr_b").fingerprint == expected

    def test_best_on_empty_db(self, tmp_path):
        db = TrialDB(tmp_path)
        assert db.best("wdsr_b") is None
        assert db.best_config("wdsr_b") is None

    def test_clear(self, tmp_path):
        db = TrialDB(tmp_path)
        db.append(_record())
        assert db.clear() == 1
        assert db.records() == []
        assert db.clear() == 0

    def test_default_tune_dir_nests_under_cache_dir(self, tmp_path):
        assert default_tune_dir(tmp_path) == tmp_path / "tune"
        # With no explicit root it falls back to the user cache root.
        from repro.cache.store import default_cache_dir

        assert default_tune_dir() == default_cache_dir() / "tune"
