"""Compiler-level tests for the schedule cache and parallel compiles.

Covers the unsound-key regression (bodies differing only in an
immediate must not share a schedule), hit/miss accounting in
diagnostics, disk round-trips across compiler instances, schema-hash
invalidation, and the bit-identity of parallel compiles.
"""

import numpy as np
import pytest

from repro.cache import fingerprint as fingerprint_mod
from repro.cache import kernel_fingerprint
from repro.codegen.lower import LoweredKernel
from repro.compiler import CompilerOptions, GCD2Compiler
from repro.errors import ReproError
from repro.isa.instructions import Instruction, Opcode
from repro.machine.simulator import Simulator
from repro.models import build_model, model_names
from tests.conftest import small_cnn


def _shift_kernel(shift: int) -> LoweredKernel:
    """A kernel whose body varies only in the VASR shift immediate."""
    body = [
        Instruction(Opcode.VSPLAT, dests=("v0",), imms=(64,),
                    lane_bytes=4),
        Instruction(Opcode.VASR, dests=("v1",), srcs=("v0",),
                    imms=(shift,)),
    ]
    return LoweredKernel(
        body=body, trips=1, description=f"shift-{shift}"
    )


def _executed_lanes(packets) -> np.ndarray:
    sim = Simulator()
    sim.run(packets)
    return sim.state.registers.read_vector("v1").data.view(np.int32)


class TestCacheKeyRegression:
    def test_imms_do_not_collide(self):
        """Two bodies differing only in an immediate: distinct
        schedules, distinct executed results.

        Under the old ``(opcode, dests, srcs)`` key the second kernel
        silently adopted the first kernel's canonical body, so both
        executed the *first* kernel's shift amount.
        """
        compiler = GCD2Compiler(CompilerOptions())
        _, _, body_a = compiler._pack(_shift_kernel(1))
        packets_b, _, body_b = compiler._pack(_shift_kernel(2))

        assert body_a is not body_b
        assert body_a[1].imms == (1,)
        assert body_b[1].imms == (2,)

        packets_a, _, _ = compiler._pack(_shift_kernel(1))
        lanes_a = _executed_lanes(packets_a)
        lanes_b = _executed_lanes(packets_b)
        # 64 >> 1 (rounded) != 64 >> 2 (rounded): outputs must differ.
        assert not np.array_equal(lanes_a, lanes_b)

    def test_lane_bytes_do_not_collide(self):
        compiler = GCD2Compiler(CompilerOptions())

        def kernel(lane_bytes):
            body = [
                Instruction(Opcode.VSPLAT, dests=("v0",), imms=(7,),
                            lane_bytes=lane_bytes),
                Instruction(Opcode.VADD, dests=("v1",),
                            srcs=("v0", "v0"), lane_bytes=lane_bytes),
            ]
            return LoweredKernel(body=body, trips=1, description="k")

        _, _, body_narrow = compiler._pack(kernel(1))
        _, _, body_wide = compiler._pack(kernel(4))
        assert body_narrow is not body_wide
        assert body_narrow[0].lane_bytes == 1
        assert body_wide[0].lane_bytes == 4

    def test_identical_bodies_still_share(self):
        compiler = GCD2Compiler(CompilerOptions())
        packets_a, _, body_a = compiler._pack(_shift_kernel(3))
        packets_b, _, body_b = compiler._pack(_shift_kernel(3))
        assert packets_a is packets_b
        assert body_a is body_b


class TestDiagnosticsAccounting:
    def test_cold_compile_records_misses_then_hits(self):
        compiled = GCD2Compiler(CompilerOptions()).compile(small_cnn())
        diag = compiled.diagnostics
        assert diag.cache_misses > 0
        assert diag.cache_memory_hits > 0
        assert diag.cache_disk_hits == 0
        assert diag.cache_lookups == \
            diag.cache_hits + diag.cache_misses

    def test_second_compile_all_hits(self):
        compiler = GCD2Compiler(CompilerOptions())
        compiler.compile(small_cnn())
        warm = compiler.compile(small_cnn("again"))
        assert warm.diagnostics.cache_misses == 0
        assert warm.diagnostics.cache_memory_hits > 0

    def test_summary_lines_mention_cache(self):
        compiled = GCD2Compiler(CompilerOptions()).compile(small_cnn())
        lines = "\n".join(compiled.diagnostics.summary_lines())
        assert "schedule cache:" in lines


class TestDiskCache:
    def test_round_trip_across_compiler_instances(self, tmp_path):
        options = CompilerOptions(cache_dir=str(tmp_path))
        graph = small_cnn()
        cold = GCD2Compiler(options).compile(graph)
        warm = GCD2Compiler(options).compile(small_cnn("again"))

        assert cold.diagnostics.cache_disk_hits == 0
        assert warm.diagnostics.cache_misses == 0
        assert warm.diagnostics.cache_disk_hits > 0
        assert warm.total_cycles == cold.total_cycles
        assert warm.total_packets == cold.total_packets

    def test_cached_artefacts_pass_strict_verification(self, tmp_path):
        options = CompilerOptions(
            cache_dir=str(tmp_path), strict=True, verify=True, lint=True
        )
        GCD2Compiler(options).compile(small_cnn())
        # Second compile resolves every schedule from disk; the stage
        # verifiers and the static analyzer must still pass.
        warm = GCD2Compiler(options).compile(small_cnn("again"))
        assert warm.diagnostics.cache_disk_hits > 0

    def test_schema_change_invalidates_disk_entries(
        self, tmp_path, monkeypatch
    ):
        options = CompilerOptions(cache_dir=str(tmp_path))
        GCD2Compiler(options).compile(small_cnn())
        monkeypatch.setattr(
            fingerprint_mod, "CACHE_SCHEMA_VERSION", 999
        )
        stale = GCD2Compiler(options).compile(small_cnn("again"))
        assert stale.diagnostics.cache_disk_hits == 0
        assert stale.diagnostics.cache_misses > 0

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        options = CompilerOptions(cache_dir=str(blocker))
        compiled = GCD2Compiler(options).compile(small_cnn())
        assert compiled.total_packets > 0


class TestParallelCompilation:
    def test_options_validation(self):
        with pytest.raises(ReproError):
            CompilerOptions(jobs=0)
        with pytest.raises(ReproError):
            CompilerOptions(cache_memory_entries=0)

    @pytest.mark.parametrize("model_name", model_names())
    def test_parallel_bit_identical_across_zoo(self, model_name):
        graph = build_model(model_name)
        serial = GCD2Compiler(CompilerOptions(jobs=1)).compile(graph)
        parallel = GCD2Compiler(CompilerOptions(jobs=4)).compile(graph)

        assert parallel.total_cycles == serial.total_cycles
        assert parallel.total_packets == serial.total_packets
        assert [n.cycles for n in parallel.nodes] == \
            [n.cycles for n in serial.nodes]
        assert [n.packet_count for n in parallel.nodes] == \
            [n.packet_count for n in serial.nodes]
        assert {
            nid: plan.label
            for nid, plan in parallel.selection.assignment.items()
        } == {
            nid: plan.label
            for nid, plan in serial.selection.assignment.items()
        }

    def test_parallel_records_worker_accounting(self):
        compiled = GCD2Compiler(CompilerOptions(jobs=2)).compile(
            small_cnn()
        )
        info = compiled.diagnostics.parallel
        assert info["tasks"] > 0
        assert 0.0 <= info["utilization"] <= 1.0

    def test_parallel_prewarm_covers_all_assembly_lookups(self):
        compiled = GCD2Compiler(CompilerOptions(jobs=2)).compile(
            small_cnn()
        )
        diag = compiled.diagnostics
        # Misses only happen during prewarm; assembly then resolves
        # everything from memory.
        assert diag.cache_misses == diag.parallel["tasks"]


class TestFingerprintMatchesCompilerUsage:
    def test_pack_uses_full_identity(self):
        kernel = _shift_kernel(5)
        compiler = GCD2Compiler(CompilerOptions())
        compiler._pack(kernel)
        fingerprint = kernel_fingerprint(
            kernel.body, compiler.options.packing
        )
        entry, tier = compiler.schedule_cache.lookup(fingerprint)
        assert entry is not None
