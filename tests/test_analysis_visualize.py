"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.visualize import (
    BAR_CHAR,
    FIGURE_CHARTS,
    bar_chart,
    render_figure,
)


class TestBarChart:
    def test_bars_proportional(self):
        rows = [{"name": "a", "v": 1.0}, {"name": "b", "v": 2.0}]
        text = bar_chart(rows, "name", ["v"], width=10)
        lines = [l for l in text.splitlines() if BAR_CHAR in l]
        assert lines[0].count(BAR_CHAR) == 5
        assert lines[1].count(BAR_CHAR) == 10

    def test_values_printed(self):
        rows = [{"name": "a", "v": 1.2345}]
        assert "1.23" in bar_chart(rows, "name", ["v"])

    def test_none_rendered_as_na(self):
        rows = [{"name": "a", "v": None}]
        assert "(n/a)" in bar_chart(rows, "name", ["v"])

    def test_title_included(self):
        rows = [{"name": "a", "v": 1.0}]
        assert bar_chart(rows, "name", ["v"], title="T").startswith("T\n")

    def test_grouped_series_share_label(self):
        rows = [{"name": "model", "x": 1.0, "y": 2.0}]
        text = bar_chart(rows, "name", ["x", "y"])
        assert text.count("model") == 1  # label only on the first bar

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([{"n": "a", "v": 1.0}], "n", ["v"], width=0)

    def test_zero_peak_handled(self):
        rows = [{"name": "a", "v": 0.0}]
        text = bar_chart(rows, "name", ["v"])
        assert "0.00" in text


class TestRenderFigure:
    def test_known_figures_render(self):
        rows = [
            {"model": "m", "vs_soft_to_hard": 1.1, "vs_soft_to_none": 1.2}
        ]
        text = render_figure("figure11", rows)
        assert "Figure 11" in text
        assert BAR_CHAR in text

    def test_unknown_figure_returns_empty(self):
        assert render_figure("table4", [{"model": "m"}]) == ""

    def test_chart_specs_reference_real_keys(self):
        # Every chart's label key must be a string; smoke-check specs.
        for name, spec in FIGURE_CHARTS.items():
            assert spec["label_key"]
            assert spec["value_keys"]
            assert spec["title"]
