#!/usr/bin/env python
"""Kernel-level exploration: instructions, layouts and unrolling.

Reproduces the paper's two kernel studies interactively for a matmul
shape of your choosing:

* the Table II trade-off — which of vmpy/vmpa/vrmpy wins at this shape
  and what the padding costs;
* the Figure 12 unroll study — the shape-adaptive heuristic versus the
  exhaustive factor sweep, with the measured packed schedules;
* a functional check — the chosen instruction kernel computing an
  exact int8 product through the packed layout.

Run:  python examples/kernel_tuning.py [M K N]
"""

import sys

import numpy as np

from repro.codegen.matmul import emit_matmul_body, matmul_int32
from repro.core.cost import gemm_cycles, gemm_padded_bytes
from repro.core.packing.sda import pack_best
from repro.core.packing.evaluate import schedule_summary
from repro.core.unroll import (
    UnrollPlan,
    adaptive_unroll,
    classify_output_shape,
    exhaustive_unroll,
    kernel_cycles,
)
from repro.isa.instructions import Opcode

PRIMARY = (Opcode.VMPY, Opcode.VMPA, Opcode.VRMPY)


def main():
    m, k, n = (
        (int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]))
        if len(sys.argv) == 4
        else (96, 96, 96)
    )
    print(f"MatMul kernel study for ({m} x {k}) @ ({k} x {n})\n")

    print("Instruction trade-off (the Table II analysis):")
    costs = {}
    for instr in PRIMARY:
        costs[instr] = gemm_cycles(instr, m, k, n)
        data = gemm_padded_bytes(instr, m, k, n)
        print(f"    {instr.value:6s} {costs[instr]:12.0f} cycles, "
              f"{data:9d} bytes with padding")
    winner = min(costs, key=costs.get)
    print(f"    -> best instruction: {winner.value}")

    shape = classify_output_shape(m, n)
    plan = adaptive_unroll(m, n, winner)
    best_plan, best_cycles = exhaustive_unroll(winner, m, k, n)
    adaptive_cycles = kernel_cycles(winner, m, k, n, plan)
    none_cycles = kernel_cycles(winner, m, k, n, UnrollPlan(1, 1))
    print(f"\nUnrolling ({shape} output):")
    print(f"    no unrolling       {none_cycles:12.0f} measured cycles")
    print(f"    adaptive {plan.label:9s} {adaptive_cycles:12.0f} "
          f"({none_cycles / adaptive_cycles:.2f}x)")
    print(f"    exhaustive {best_plan.label:7s} {best_cycles:12.0f} "
          f"({none_cycles / best_cycles:.2f}x)")

    body = emit_matmul_body(winner, plan.outer, plan.mid,
                            include_epilogue=True)
    summary = schedule_summary(pack_best(body))
    print(f"\nSDA-packed inner loop: {summary.packets} packets, "
          f"{summary.cycles} cycles, "
          f"{summary.slots_per_packet:.2f} slots/packet")

    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
    b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)
    result = matmul_int32(a, b, winner)
    expected = a.astype(np.int32) @ b.astype(np.int32)
    assert (result == expected).all()
    print(f"\nFunctional check: {winner.value} kernel over the "
          f"{winner.value}-layout computes the exact int8 product "
          f"(max |acc| = {np.abs(result).max()}).")


if __name__ == "__main__":
    main()
