#!/usr/bin/env python
"""Deep dive: where Equation 1's cycles go under each selection policy.

Compiles ResNet-50 under local-optimal, PBQP and GCD2 selection, splits
each assignment's Agg_Cost into its kernel / edge-transform / boundary
components, and shows the instruction mix each policy settles on — the
quantitative version of the paper's Section IV-A motivating example
(operator A's layout choice constraining operator B's).

Run:  python examples/selection_deep_dive.py
"""

from collections import Counter

from repro.core.cost import CostModel
from repro.core.global_select import solve_gcd2
from repro.core.local import solve_local
from repro.core.pbqp import solve_pbqp
from repro.core.selection_common import cost_breakdown
from repro.graph.passes import run_default_passes
from repro.models import build_model


def main():
    graph = run_default_passes(build_model("resnet50"))
    model = CostModel()
    print(f"ResNet-50: {graph.operator_count()} operators after fusion\n")

    solvers = [
        ("local optimal", solve_local),
        ("PBQP reduction", solve_pbqp),
        ("GCD2(13)", lambda g, m: solve_gcd2(g, m, max_operators=13)),
    ]
    results = {}
    for label, solve in solvers:
        result = solve(graph, model)
        breakdown = cost_breakdown(graph, model, result.assignment)
        results[label] = (result, breakdown)
        mix = Counter(
            result.assignment[n.node_id].instruction.value
            for n in graph
            if n.op.is_compute_heavy
        )
        print(f"{label:16s} Agg_Cost {breakdown['total'] / 1e6:7.2f} Mcycles"
              f"  = kernels {breakdown['nodes'] / 1e6:7.2f}"
              f" + transforms {breakdown['edges'] / 1e6:6.2f}"
              f" + boundary {breakdown['boundary'] / 1e6:5.2f}"
              f"   [{result.solve_seconds * 1e3:6.1f} ms search]")
        print(f"{'':16s} instruction mix: {dict(mix)}")

    local_total = results["local optimal"][1]["total"]
    gcd2_total = results["GCD2(13)"][1]["total"]
    local_edges = results["local optimal"][1]["edges"]
    gcd2_edges = results["GCD2(13)"][1]["edges"]
    print(f"\nGCD2 vs local: {local_total / gcd2_total:.2f}x lower total "
          f"cost; transform cycles cut "
          f"{local_edges / max(1.0, gcd2_edges):.0f}x — the global "
          f"optimization's whole win is avoiding repacking between "
          f"operators.")


if __name__ == "__main__":
    main()
