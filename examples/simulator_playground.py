#!/usr/bin/env python
"""Machine-level playground: a real program on the simulated DSP.

Generates a complete straight-line matmul program (real addresses,
weights baked as immediates), runs it instruction by instruction on
the functional simulator, then packs it with SDA and runs the *packed*
schedule — showing that packing preserves the bytes in memory while
cutting the cycle count.  Finally the program is encoded to binary and
decoded back.

Run:  python examples/simulator_playground.py
"""

import numpy as np

from repro.codegen.program import (
    build_matmul_program,
    run_packed,
    run_sequential,
)
from repro.core.packing.baselines import pack_soft_to_hard
from repro.core.packing.sda import pack_best
from repro.isa.encoding import decode_program, encode_program


def main():
    m, k, n = 64, 8, 4
    rng = np.random.default_rng(7)
    a = rng.integers(-128, 128, size=(m, k)).astype(np.int8)
    b = rng.integers(-128, 128, size=(k, n)).astype(np.int8)

    program = build_matmul_program(a.shape, b)
    print(f"Generated a ({m}x{k}) @ ({k}x{n}) program: "
          f"{len(program.instructions)} instructions, "
          f"{program.input_bytes} input bytes in simulated memory")

    sequential, seq_cycles = run_sequential(program, a)
    expected = a.astype(np.int32) @ b.astype(np.int32)
    assert (sequential == expected).all()
    print(f"\nSequential execution: {seq_cycles} cycles — result matches "
          f"numpy exactly")

    for label, packer in [("SDA packing", pack_best),
                          ("soft_to_hard packing", pack_soft_to_hard)]:
        packets = packer(program.instructions)
        packed, cycles = run_packed(program, a, packer)
        assert (packed == expected).all()
        density = len(program.instructions) / len(packets)
        print(f"{label:22s} {len(packets):4d} packets "
              f"({density:.2f} instrs/packet), {cycles} cycles "
              f"({seq_cycles / cycles:.2f}x vs sequential) — "
              f"memory bytes identical")

    packets = pack_best(program.instructions)
    blob, names = encode_program(packets)
    decoded = decode_program(blob, names)
    total = sum(len(p) for p in decoded)
    print(f"\nEncoded to {len(blob)} bytes "
          f"({len(blob) / total:.1f} B/instruction incl. immediates); "
          f"decoded back to {len(decoded)} packets, {total} instructions")

    print("\nFirst three packets of the SDA schedule:")
    for packet in packets[:3]:
        print("   ", packet)


if __name__ == "__main__":
    main()
