#!/usr/bin/env python
"""Quickstart: compile a small CNN for the simulated mobile DSP.

Builds a network with the graph builder, compiles it with GCD2's
full pipeline (global layout/instruction selection, SDA VLIW packing,
adaptive unrolling), runs quantized inference through the selected
instruction kernels, and prints the plan the compiler chose.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import CompilerOptions, compile_model
from repro.graph.builder import GraphBuilder
from repro.graph.execute import ReferenceExecutor
from repro.runtime.executor import QuantizedExecutor


def build_network():
    """A small residual CNN classifier."""
    b = GraphBuilder("quickstart_cnn")
    x = b.input((1, 3, 32, 32), name="image")
    x = b.conv2d(x, 16, kernel=3, name="stem")
    x = b.relu(x)
    skip = x
    y = b.conv2d(x, 16, kernel=3, name="block_a")
    y = b.relu(y)
    y = b.conv2d(y, 16, kernel=3, name="block_b")
    x = b.add(skip, y, name="residual")
    x = b.relu(x)
    x = b.max_pool(x, kernel=2, stride=2)
    x = b.conv2d(x, 32, kernel=1, padding=0, name="expand")
    x = b.global_avg_pool(x)
    x = b.reshape(x, (1, 32))
    x = b.dense(x, 10, name="classifier")
    b.softmax(x, name="probs")
    return b.build()


def main():
    graph = build_network()
    print(f"Built {graph.name}: {graph.operator_count()} operators, "
          f"{graph.total_macs() / 1e6:.1f} MMACs")

    compiled = compile_model(graph, CompilerOptions())
    print(f"\nCompiled with {compiled.selection.solver}: "
          f"modelled latency {compiled.latency_ms * 1e3:.1f} us, "
          f"{compiled.total_packets} VLIW packets/iteration set")

    print("\nPer-operator execution plans (instruction / layout / unroll):")
    for cn in compiled.nodes:
        if cn.node.op.is_compute_heavy:
            print(f"  {cn.node.name:12s} -> {cn.plan.label:18s} "
                  f"unroll {cn.unroll.label:5s} "
                  f"({cn.packet_count} packets per iteration)")

    image = np.random.default_rng(0).normal(size=(1, 3, 32, 32))
    quantized = QuantizedExecutor(compiled, seed=42).run({"image": image})
    reference = ReferenceExecutor(compiled.graph, seed=42).run(
        {"image": image}
    )
    q, f = quantized["probs"][0], reference["probs"][0]
    print("\nQuantized vs float top prediction: "
          f"class {int(np.argmax(q))} (q) vs {int(np.argmax(f))} (float); "
          f"max probability error {np.abs(q - f).max():.4f}")


if __name__ == "__main__":
    main()
