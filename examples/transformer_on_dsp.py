#!/usr/bin/env python
"""TinyBERT on the mobile DSP — the first-time-support story.

The paper's frameworks (TFLite, SNPE) cannot run TinyBERT or Conformer
on the DSP at all: they lack the activation-by-activation MatMul
variants of attention and operators like Pow.  This example shows the
operator coverage gap, then compiles TinyBERT with GCD2 and reports
the plan mix and latency — including the division-to-LUT rewrite that
the transformer's normalisation stacks rely on.

Run:  python examples/transformer_on_dsp.py
"""

from collections import Counter

from repro.baselines.frameworks import FRAMEWORKS, framework_latency_ms
from repro.compiler import CompilerOptions, compile_model
from repro.harness import GCD2_DISPATCH_US
from repro.models import MODELS, build_model


def main():
    graph = build_model("tinybert")
    info = MODELS["tinybert"]
    op_mix = Counter(n.op_type for n in graph if n.op_type != "Constant")
    print(f"TinyBERT(4): {graph.operator_count()} operators, "
          f"{graph.total_macs() / 1e9:.2f} GMACs at sequence length 256")
    print("Operator mix:", dict(op_mix.most_common(8)))

    gating = [
        n.name
        for n in graph
        if n.op_type == "Pow"
        or (n.op_type == "MatMul" and len(n.inputs) == 2)
    ]
    print(f"\n{len(gating)} operators block the baseline frameworks "
          f"(Pow + two-operand MatMul), e.g. {gating[:4]}")
    for key in ("tflite", "snpe"):
        latency = framework_latency_ms(graph, info, FRAMEWORKS[key])
        print(f"    {FRAMEWORKS[key].name}-DSP: "
              f"{'UNSUPPORTED' if latency is None else latency}")

    for label, options in [
        ("with division-to-LUT", CompilerOptions(other_opts=True)),
        ("without other opts", CompilerOptions(other_opts=False)),
    ]:
        compiled = compile_model(graph, options)
        dispatch = compiled.graph.operator_count() * GCD2_DISPATCH_US / 1e3
        print(f"\nGCD2 {label}: {compiled.latency_ms + dispatch:.2f} ms")
        if options.other_opts:
            plans = Counter(
                cn.plan.label for cn in compiled.nodes
                if cn.node.op.is_compute_heavy
            )
            for plan, count in plans.most_common():
                print(f"    {count:3d} GEMM kernels via {plan}")

    print("\nPaper reference (Table IV): GCD2 12.2 ms; TFLite/SNPE: '-' "
          "(first mobile-DSP execution of this model)")


if __name__ == "__main__":
    main()
