#!/usr/bin/env python
"""Style transfer on the DSP: where the layout optimization pays off.

FST is the paper's second-largest workload (161 GMACs).  This example
compiles it under three selection policies and shows how the global
layout/instruction selection removes the boundary repacking that the
uniform-kernel frameworks pay on every operator — the effect behind
Table IV's 4.4x TFLite speedup on this model.

Run:  python examples/style_transfer_latency.py
"""

from collections import Counter

from repro.baselines.frameworks import FRAMEWORKS, framework_latency_ms
from repro.compiler import CompilerOptions, compile_model
from repro.harness import GCD2_DISPATCH_US
from repro.models import MODELS, build_model


def main():
    graph = build_model("fst")
    info = MODELS["fst"]
    print(f"FST: {graph.operator_count()} operators, "
          f"{graph.total_macs() / 1e9:.0f} GMACs at 1100x1100")

    results = {}
    for label, options in [
        ("local selection", CompilerOptions(selection="local")),
        ("GCD2(13) global", CompilerOptions(selection="gcd2")),
    ]:
        compiled = compile_model(graph, options)
        dispatch = compiled.graph.operator_count() * GCD2_DISPATCH_US / 1e3
        results[label] = compiled.latency_ms + dispatch
        plans = Counter(
            cn.plan.label for cn in compiled.nodes
            if cn.node.op.is_compute_heavy
        )
        print(f"\n{label}: {results[label]:.1f} ms "
              f"(transform overhead {compiled.transform_cycles / 1e6:.1f} "
              f"Mcycles)")
        for plan, count in plans.most_common():
            print(f"    {count:3d} kernels via {plan}")

    for key in ("tflite", "snpe"):
        latency = framework_latency_ms(graph, info, FRAMEWORKS[key])
        results[FRAMEWORKS[key].name] = latency
        print(f"\n{FRAMEWORKS[key].name}-DSP (uniform kernels): "
              f"{latency:.1f} ms")

    ours = results["GCD2(13) global"]
    print("\nSpeedups of GCD2 over:")
    for label, latency in results.items():
        if label != "GCD2(13) global":
            print(f"    {label:24s} {latency / ours:.2f}x")
    print(f"\nPaper reference (Table IV): TFLite 935 ms, SNPE 870 ms, "
          f"GCD2 211 ms (4.4x / 4.1x)")


if __name__ == "__main__":
    main()
